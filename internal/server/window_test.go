package server_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/fcds/fcds/internal/quantiles"
	"github.com/fcds/fcds/internal/server"
	"github.com/fcds/fcds/internal/table"
	"github.com/fcds/fcds/internal/theta"
	"github.com/fcds/fcds/internal/window"
)

// These tests pin the WINDOW_SNAPSHOT wire path: an edge running a
// windowed table ships its sealed-window snapshot with its rotation
// epoch; the upstream replaces the source's previous window only when
// the epoch has not gone backwards, so duplicate deliveries are
// idempotent and stale reordered ships never roll the window back.

// TestWindowSnapshotRoundTrip: at every epoch, the upstream's rollup
// after a WINDOW_SNAPSHOT push equals the edge window table's own
// window rollup — including epochs where old data fell off the ring,
// which only replace semantics (not merge) can track.
func TestWindowSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(0x71bd))
	tcfg, eng := table.ThetaConfig[string]{
		Table: table.Config[string]{Writers: 1, Shards: 8},
		K:     1024, MaxError: 1,
	}.Engine()
	wt := window.NewTable(tcfg, eng, window.Config{Slots: 3, Width: time.Hour})
	defer wt.Close()
	w := wt.Writer(0)

	up := table.NewTheta(table.ThetaConfig[string]{
		Table: table.Config[string]{Writers: 1, Shards: 8},
		K:     1024, MaxError: 1,
	})
	t.Cleanup(up.Close)
	s, addr := startServer(t, server.Config{})
	if err := server.RegisterTheta(s, "evw", up); err != nil {
		t.Fatal(err)
	}
	c := dialT(t, addr)

	ship := func() {
		t.Helper()
		snap, err := wt.WindowSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		blob, err := snap.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if err := c.PushWindowSnapshot("evw", "edge-w", uint64(wt.Epoch()), blob); err != nil {
			t.Fatal(err)
		}
	}
	check := func(epoch int) {
		t.Helper()
		_, rblob, err := c.Rollup("evw")
		if err != nil {
			t.Fatal(err)
		}
		merged, err := theta.UnmarshalCompact(rblob)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := merged.Estimate(), wt.RollupWindow().Estimate(); got != want {
			t.Fatalf("epoch %d: upstream rollup = %v, edge window rollup = %v", epoch, got, want)
		}
	}

	// 7 epochs over a 3-slot ring: epochs 3+ have data expiring, so the
	// upstream view shrinks as well as grows — merge semantics would
	// monotonically accumulate and diverge.
	for e := 0; e < 7; e++ {
		n := 50 + rng.Intn(300)
		keys := make([]string, n)
		vals := make([]uint64, n)
		for i := range keys {
			keys[i] = fmt.Sprintf("tenant-%d", rng.Intn(6))
			vals[i] = uint64(10_000*e) + rng.Uint64()%5_000
		}
		w.UpdateKeyedBatch(keys, vals)
		wt.Drain()
		ship()
		check(e)
		// Duplicate delivery of the same epoch (a reconnecting shipper
		// replaying its outbox) is idempotent.
		ship()
		check(e)
		wt.Rotate()
	}
}

// TestWindowSnapshotStaleEpochIgnored: a snapshot carrying an older
// epoch than the last applied one is acknowledged but ignored —
// delayed or reordered ships cannot roll the upstream's window back.
func TestWindowSnapshotStaleEpochIgnored(t *testing.T) {
	up := table.NewQuantiles(table.QuantilesConfig[string]{
		Table: table.Config[string]{Writers: 1, Shards: 8},
		K:     128,
	})
	t.Cleanup(up.Close)
	s, addr := startServer(t, server.Config{})
	if err := server.RegisterQuantiles(s, "latw", up); err != nil {
		t.Fatal(err)
	}
	c := dialT(t, addr)

	tcfg, eng := table.QuantilesConfig[string]{
		Table: table.Config[string]{Writers: 1, Shards: 8},
		K:     128,
	}.Engine()
	wt := window.NewTable(tcfg, eng, window.Config{Slots: 2, Width: time.Hour})
	defer wt.Close()
	w := wt.Writer(0)

	capture := func() []byte {
		t.Helper()
		snap, err := wt.WindowSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		blob, err := snap.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	ingest := func(n int) {
		for i := 0; i < n; i++ {
			w.UpdateKeyed("api", float64(i))
		}
		wt.Drain()
	}

	ingest(100) // epoch 0: 100 samples
	oldBlob, oldEpoch := capture(), uint64(wt.Epoch())
	wt.Rotate()
	wt.Rotate() // epoch 0 expired (Slots=2)
	ingest(40)  // epoch 2: 40 samples, the whole window
	if err := c.PushWindowSnapshot("latw", "edge-w", uint64(wt.Epoch()), capture()); err != nil {
		t.Fatal(err)
	}
	if got := rollupQuantilesN(t, c, "latw"); got != 40 {
		t.Fatalf("window N = %d, want 40", got)
	}

	// The stale epoch-0 ship arrives late: OK on the wire, no effect.
	if err := c.PushWindowSnapshot("latw", "edge-w", oldEpoch, oldBlob); err != nil {
		t.Fatalf("stale window push must be acknowledged, got %v", err)
	}
	if got := rollupQuantilesN(t, c, "latw"); got != 40 {
		t.Fatalf("after stale push: window N = %d, want 40 (stale ship must be ignored)", got)
	}

	// A DIFFERENT source's window still aggregates alongside.
	if err := c.PushWindowSnapshot("latw", "edge-w2", oldEpoch, oldBlob); err != nil {
		t.Fatal(err)
	}
	if got := rollupQuantilesN(t, c, "latw"); got != 140 {
		t.Fatalf("two-source window N = %d, want 140", got)
	}

	// An anonymous window push is rejected: without a source id there
	// is nothing to key replacement on.
	if err := c.PushWindowSnapshot("latw", "", uint64(wt.Epoch()), capture()); err == nil {
		t.Fatal("anonymous window push must be rejected")
	}

	// Sanity: the quantiles decoder agrees the wire blob is intact.
	_, blob, err := c.Rollup("latw")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := quantiles.Unmarshal(blob); err != nil {
		t.Fatal(err)
	}
}
