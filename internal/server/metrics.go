package server

import (
	"sync/atomic"
	"time"

	"github.com/fcds/fcds/internal/metrics"
)

// checkpointDurationBounds bucket a full checkpoint pass — disk fsyncs
// included, so the scale runs coarser than the in-memory read-path
// bounds in internal/table.
var checkpointDurationBounds = []float64{
	0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// RegisterMetrics exports the server's operational counters into reg
// and attaches the registry so tables registered (and snapshot sources
// first seen) afterwards export their series too. Every series is
// func-backed and read from the server's existing atomics at scrape
// time; the connection frame loop pays nothing beyond its own counter
// bumps. Call it once per registry — typically right after New.
//
// Global families: fcds_server_tables, fcds_server_live_keys,
// fcds_server_connections_open, fcds_server_connections_total,
// fcds_server_frames_total, fcds_server_items_total,
// fcds_server_snapshots_total, fcds_server_errors_total, plus the
// checkpoint group (fcds_server_has_checkpoint,
// fcds_server_checkpoint_age_seconds, fcds_server_checkpoints_total,
// fcds_server_checkpoint_duration_seconds — a histogram replacing the
// old fcds_server_checkpoint_write_seconds last-pass gauge). Per table
// (label "table"):
// fcds_server_table_keys, fcds_server_table_frames_total,
// fcds_server_table_items_total, fcds_server_table_bytes_total,
// fcds_server_table_errors_total, fcds_server_writer_pool_waits_total,
// fcds_server_writer_pool_idle, and the deprecated always-zero
// fcds_server_writer_slot_waits_total (kept for scrape compatibility).
// Per accepted named push (labels "table", "source"):
// fcds_server_snapshot_push_age_seconds.
func (s *Server) RegisterMetrics(reg *metrics.Registry) {
	s.metricsMu.Lock()
	s.metricsReg = reg
	pushes := make(map[pushKey]*atomic.Int64, len(s.pushTimes))
	for k, cell := range s.pushTimes {
		pushes[k] = cell
	}
	s.metricsMu.Unlock()

	reg.GaugeFunc("fcds_server_tables",
		"Registered tables.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.tables))
		})
	reg.GaugeFunc("fcds_server_live_keys",
		"Live keys summed over every registered table.",
		func() float64 { return float64(s.Stats().Keys) })
	reg.GaugeFunc("fcds_server_connections_open",
		"Currently open client connections.",
		func() float64 { return float64(s.connsOpen.Load()) })
	reg.CounterFunc("fcds_server_connections_total",
		"Client connections ever accepted.",
		func() float64 { return float64(s.connsSeen.Load()) })
	reg.CounterFunc("fcds_server_frames_total",
		"Request frames processed (all tables and table-less frames).",
		func() float64 { return float64(s.frames.Load()) })
	reg.CounterFunc("fcds_server_items_total",
		"Keyed updates ingested.",
		func() float64 { return float64(s.items.Load()) })
	reg.CounterFunc("fcds_server_snapshots_total",
		"Remote snapshots merged (stale window re-ships excluded).",
		func() float64 { return float64(s.snapshots.Load()) })
	reg.CounterFunc("fcds_server_errors_total",
		"Error frames returned.",
		func() float64 { return float64(s.errs.Load()) })

	reg.GaugeFunc("fcds_server_has_checkpoint",
		"1 when the server has ever written or restored a durability checkpoint, else 0.",
		func() float64 {
			if _, ok := s.CheckpointAge(); ok {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("fcds_server_checkpoint_age_seconds",
		"Seconds since the newest checkpoint was written or restored; 0 until the first one (check fcds_server_has_checkpoint). Alert when this grows past the checkpoint interval: it bounds aggregator state a crash would lose.",
		func() float64 {
			age, ok := s.CheckpointAge()
			if !ok {
				return 0
			}
			return age.Seconds()
		})
	reg.CounterFunc("fcds_server_checkpoints_total",
		"Completed checkpoint write passes.",
		func() float64 { return float64(s.checkpoints.Load()) })
	s.ckptHist.Store(reg.Histogram("fcds_server_checkpoint_duration_seconds",
		"Wall time of checkpoint write passes (all tables, concurrent). Alert when p99 approaches the checkpoint interval: passes start overlapping and the durability window stops shrinking.",
		checkpointDurationBounds))

	// Journal families: all read through s.Journal() at scrape time, so
	// they report 0 until AttachJournal and pick the journal up without
	// re-registration. jstats flattens the nil check.
	jstats := func() JournalStats {
		if j := s.Journal(); j != nil {
			return j.Stats()
		}
		return JournalStats{}
	}
	reg.GaugeFunc("fcds_server_has_journal",
		"1 when a durability journal is attached, else 0.",
		func() float64 {
			if s.Journal() != nil {
				return 1
			}
			return 0
		})
	reg.CounterFunc("fcds_server_journal_records_total",
		"Records appended to the durability journal (pushes, window ships, eviction spills).",
		func() float64 { return float64(jstats().Records) })
	reg.CounterFunc("fcds_server_journal_bytes_total",
		"Framed bytes appended to the durability journal.",
		func() float64 { return float64(jstats().Bytes) })
	reg.GaugeFunc("fcds_server_journal_size_bytes",
		"Bytes currently on disk across all journal files. Grows between checkpoints, shrinks on rotation pruning and self-compaction; unbounded growth means checkpoints are failing.",
		func() float64 { return float64(jstats().TotalBytes) })
	reg.CounterFunc("fcds_server_journal_rotations_total",
		"Journal file rotations (one per checkpoint pass).",
		func() float64 { return float64(jstats().Rotations) })
	reg.CounterFunc("fcds_server_journal_compactions_total",
		"Size-triggered journal self-compactions (latest record per source kept, merge records carried).",
		func() float64 { return float64(jstats().Compactions) })
	reg.CounterFunc("fcds_server_journal_fsyncs_total",
		"Journal fsync calls (every -journal-fsync-every records).",
		func() float64 { return float64(jstats().Fsyncs) })
	reg.CounterFunc("fcds_server_journal_pruned_files_total",
		"Journal files deleted by post-checkpoint retention.",
		func() float64 { return float64(jstats().Pruned) })
	reg.GaugeFunc("fcds_server_journal_unsynced_records",
		"Acknowledged journal records not yet fsynced — the crash-loss window. Alert when this sits at -journal-fsync-every minus 1 under steady traffic: every crash then loses the maximum the setting allows.",
		func() float64 { return float64(jstats().Unsynced) })
	reg.GaugeFunc("fcds_server_journal_replayed_records",
		"Records the last boot replayed from the journal on top of restored checkpoints (0 after a clean start).",
		func() float64 { return float64(s.replayRecords.Load()) })
	reg.GaugeFunc("fcds_server_journal_replay_age_seconds",
		"Age of the newest record the last boot replayed; 0 when nothing replayed. Persistently large values mean the journal carried old un-checkpointed state — check that checkpoints run.",
		func() float64 {
			_, age, ok := s.JournalReplay()
			if !ok {
				return 0
			}
			return age.Seconds()
		})

	s.mu.Lock()
	type reginfo struct {
		name string
		b    backend
		tc   *tableCounters
	}
	infos := make([]reginfo, 0, len(s.tables))
	for name, b := range s.tables {
		infos = append(infos, reginfo{name, b, s.tstats[name]})
	}
	s.mu.Unlock()
	for _, ri := range infos {
		s.registerTableMetrics(reg, ri.name, ri.b, ri.tc)
	}
	for k, cell := range pushes {
		registerPushLag(reg, k, cell)
	}
}

// registerTableMetrics exports one registered table's server-side
// series; called from register (registry already attached) or
// RegisterMetrics (tables registered first).
func (s *Server) registerTableMetrics(reg *metrics.Registry, name string, b backend, tc *tableCounters) {
	reg.GaugeFunc("fcds_server_table_keys",
		"Live keys per registered table.",
		func() float64 { return float64(b.liveKeys()) }, "table", name)
	reg.CounterFunc("fcds_server_table_frames_total",
		"Request frames resolved to this table.",
		func() float64 { return float64(tc.frames.Load()) }, "table", name)
	reg.CounterFunc("fcds_server_table_items_total",
		"Keyed updates ingested into this table.",
		func() float64 { return float64(tc.items.Load()) }, "table", name)
	reg.CounterFunc("fcds_server_table_bytes_total",
		"Request payload bytes of frames resolved to this table.",
		func() float64 { return float64(tc.bytes.Load()) }, "table", name)
	reg.CounterFunc("fcds_server_table_errors_total",
		"Error frames returned for requests resolved to this table.",
		func() float64 { return float64(tc.errs.Load()) }, "table", name)
	reg.CounterFunc("fcds_server_writer_pool_waits_total",
		"Ingest frames that found every writer handle checked out and had to wait (more concurrent ingest than the table has writers — raise Writers).",
		func() float64 { return float64(b.poolWaits()) }, "table", name)
	reg.GaugeFunc("fcds_server_writer_pool_idle",
		"Writer handles currently checked in (idle) in the table's ingest pool.",
		func() float64 { return float64(b.poolIdle()) }, "table", name)
	// Predecessor of the pool-waits counter, kept emitted for scrape
	// compatibility: connection-pinned writer slots no longer exist
	// (any idle handle serves any frame), so the series is constant 0.
	reg.CounterFunc("fcds_server_writer_slot_waits_total",
		"Deprecated: connection-pinned writer slots were replaced by the writer-handle pool (see fcds_server_writer_pool_waits_total); always 0.",
		func() float64 { return 0 }, "table", name)
}

// registerPushLag exports one (table, source) pair's push-lag gauge:
// seconds since that source's last accepted snapshot push. An edge that
// stops shipping shows up as this gauge climbing while its last
// snapshot is still counted in rollups.
func registerPushLag(reg *metrics.Registry, k pushKey, last *atomic.Int64) {
	reg.GaugeFunc("fcds_server_snapshot_push_age_seconds",
		"Seconds since the named source's last accepted snapshot push to this table.",
		func() float64 {
			return time.Duration(time.Now().UnixNano() - last.Load()).Seconds()
		}, "table", k.table, "source", k.source)
}
