// Package server implements the fcds network ingest server: a TCP
// endpoint speaking the length-prefixed binary protocol of
// internal/server/wire, terminating keyed-batch frames straight into
// the registered tables' UpdateKeyedBatch path and shipping FCTB table
// snapshots between nodes (push and pull) — the distributed-
// aggregation fabric the mergeable-sketch design exists for.
//
// One goroutine serves each connection: frames are read through a
// burst window sized from the length prefix (a pipelined burst of
// batches costs one read syscall and frames decode in place, zero
// copies off the socket buffer), streamed with an allocation-free
// cursor straight into the grouping scratch of a table writer handle
// checked out of the table's pool, so the steady-state ingest path
// allocates nothing (string keys excepted — the table retains those).
// Responses are written through a buffered writer that flushes only
// when the connection's pipelined input is exhausted, so a client
// streaming batches pays one syscall per burst, not per frame.
//
// Shutdown is drain-based: Close stops the accept loop, then
// interrupts every connection's next blocking read; a frame already
// received keeps its in-flight processing, writes its response, and
// only then does the connection close.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/fcds/fcds/internal/metrics"
	"github.com/fcds/fcds/internal/server/wire"
)

// Config configures a Server. The zero value is usable.
type Config struct {
	// MaxFrame bounds one frame's payload size in bytes (<= 0 means
	// wire.DefaultMaxFrame). Oversized frames fail the connection.
	MaxFrame int
	// IdleTimeout closes a connection whose next frame does not arrive
	// within it, so half-open peers (an edge that lost power, a NAT
	// entry that expired) cannot pin goroutines and writer slots
	// forever. Zero (the default) keeps the historical behavior —
	// reads block indefinitely; fcds-serve enables it. Clients that
	// idle legitimately (a dashboard polling HEALTH slower than the
	// timeout) reconnect on demand — the reconnecting Reliable client
	// does this transparently.
	IdleTimeout time.Duration
	// Logf, when non-nil, receives connection-level diagnostics
	// (accept errors, protocol violations). Nil means silent.
	Logf func(format string, args ...any)
	// ReadBurst sizes each connection's buffered read window in bytes
	// (<= 0 means wire.DefaultReadBurst). Frames that fit the window
	// decode in place — zero copies off the socket buffer; larger
	// frames (snapshot blobs) spill to an owned per-connection buffer.
	ReadBurst int
	// WriteBurst sizes each connection's buffered response writer in
	// bytes (<= 0 means 64 KiB).
	WriteBurst int
	// NoCompression refuses the HELLO compression feature: clients
	// that offer it fall back to uncompressed payloads (the negotiation
	// result simply omits the bit; nothing fails).
	NoCompression bool
	// CheckpointRetain is how many checkpoint generations WriteCheckpoints
	// keeps per table (and how many journal files survive the matching
	// prune). <= 0 means DefaultRetain. Raising it trades disk for the
	// ability to fall back further when generations corrupt at rest.
	CheckpointRetain int
}

// Stats is a point-in-time snapshot of the server's counters.
type Stats struct {
	// Tables is the number of registered tables; Keys sums their live
	// key counts.
	Tables, Keys int
	// Conns is the number of currently open connections; ConnsTotal
	// counts every connection ever accepted.
	Conns, ConnsTotal int64
	// Frames counts request frames processed, Items keyed updates
	// ingested, Snapshots remote snapshots merged, Errors error frames
	// returned.
	Frames, Items, Snapshots, Errors int64
}

// Server is a network ingest endpoint for registered keyed tables.
// Register tables (RegisterTheta, ...), then Serve a listener (or
// ListenAndServe); Close drains and stops it. The server owns every
// registered table's writer handles — see RegisterTheta.
type Server struct {
	cfg Config

	mu     sync.Mutex
	tables map[string]backend
	tstats map[string]*tableCounters
	conns  map[net.Conn]struct{}
	ln     net.Listener

	done   chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool

	frames    atomic.Int64
	items     atomic.Int64
	snapshots atomic.Int64
	errs      atomic.Int64
	connsOpen atomic.Int64
	connsSeen atomic.Int64

	// lastCheckpoint is the unix-nano timestamp of the newest durable
	// checkpoint this server wrote or recovered (0 = never); HEALTH
	// reports its age so monitors can bound crash data loss.
	lastCheckpoint atomic.Int64
	// checkpoints counts completed WriteCheckpoints passes; ckptHist,
	// when metrics are registered, receives each pass's wall time.
	checkpoints atomic.Int64
	ckptHist    atomic.Pointer[metrics.Histogram]
	// ckptGen issues strictly increasing checkpoint generation numbers
	// (seeded from disk on restore, bumped past itself every pass).
	ckptGen atomic.Uint64

	// journal is the attached durability journal (nil = disabled); the
	// backends append to it under their own rmu, WriteCheckpoints
	// rotates and prunes it. replayRecords/replayTS describe the last
	// boot's ReplayJournal pass for HEALTH, /healthz and metrics:
	// records applied, and the newest applied record's append
	// timestamp (unix nanos, 0 = nothing replayed).
	journal       atomic.Pointer[Journal]
	replayRecords atomic.Int64
	replayTS      atomic.Int64

	// metricsMu guards the attached registry and the per-(table,source)
	// push timestamps behind the snapshot-push lag gauges.
	metricsMu  sync.Mutex
	metricsReg *metrics.Registry
	pushTimes  map[pushKey]*atomic.Int64
}

// tableCounters attributes the server's frame traffic to one registered
// table; cells are bumped on the connection goroutines and read by the
// metrics registry at scrape time.
type tableCounters struct {
	frames, items, bytes, errs atomic.Int64
}

// pushKey identifies one snapshot-pushing source on one table.
type pushKey struct{ table, source string }

// New returns an idle server; register tables and then Serve it.
func New(cfg Config) *Server {
	return &Server{
		cfg:       cfg,
		tables:    make(map[string]backend),
		tstats:    make(map[string]*tableCounters),
		conns:     make(map[net.Conn]struct{}),
		done:      make(chan struct{}),
		pushTimes: make(map[pushKey]*atomic.Int64),
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// register binds a backend to a table name (the family Register*
// functions are the public surface).
func (s *Server) register(name string, b backend) error {
	if name == "" {
		return errors.New("server: empty table name")
	}
	tc := &tableCounters{}
	s.mu.Lock()
	if _, dup := s.tables[name]; dup {
		s.mu.Unlock()
		return fmt.Errorf("server: table %q already registered", name)
	}
	s.tables[name] = b
	s.tstats[name] = tc
	s.mu.Unlock()
	b.bind(name, &s.journal)
	// Export the table's series immediately when a registry is already
	// attached (tables registered before RegisterMetrics are picked up
	// there instead). Outside s.mu: the registry takes its own lock.
	s.metricsMu.Lock()
	reg := s.metricsReg
	s.metricsMu.Unlock()
	if reg != nil {
		s.registerTableMetrics(reg, name, b, tc)
	}
	return nil
}

func (s *Server) lookup(name string) (backend, bool) {
	s.mu.Lock()
	b, ok := s.tables[name]
	s.mu.Unlock()
	return b, ok
}

// lookupCounters resolves a table and its attribution counters.
func (s *Server) lookupCounters(name string) (backend, *tableCounters, bool) {
	s.mu.Lock()
	b, ok := s.tables[name]
	tc := s.tstats[name]
	s.mu.Unlock()
	return b, tc, ok
}

// AttachJournal arms write-ahead journaling: from this call on, every
// named-source push, window ship and eviction spill is appended to j
// (and fsynced per its config) BEFORE it mutates in-memory state, and
// WriteCheckpoints rotates and prunes j as part of each pass. Call the
// boot sequence in order — RestoreCheckpoints, ReplayJournal,
// OpenJournal, AttachJournal — before Start, so recovery replays the
// previous process's files and new records land in a fresh one.
func (s *Server) AttachJournal(j *Journal) {
	s.journal.Store(j)
}

// Journal returns the attached journal, nil when journaling is off.
func (s *Server) Journal() *Journal {
	return s.journal.Load()
}

// ReplayJournal re-applies the journal tail in dir on top of restored
// checkpoints: every record above its table's restored LSN watermark
// is applied exactly as the original frame was, records at or below it
// are skipped (the checkpoint already contains them), torn tails are
// truncated, and records for tables this configuration no longer
// registers are logged and counted but do not fail the boot. Call it
// after RestoreCheckpoints and before AttachJournal/Start.
func (s *Server) ReplayJournal(dir string) (JournalReplayStats, error) {
	st, err := replayJournalDir(dir, func(rec *JournalRecord, st *JournalReplayStats) error {
		b, ok := s.lookup(rec.Table)
		if !ok {
			st.UnknownTable++
			s.logf("server: journal replay: table %q not registered, skipping record lsn=%d", rec.Table, rec.LSN)
			return nil
		}
		var applied, stale bool
		var aerr error
		switch rec.Type {
		case jrecPush:
			applied, aerr = b.replayPush(rec.LSN, rec.Source, rec.Blob)
		case jrecWindow:
			applied, stale, aerr = b.replayWindow(rec.LSN, rec.Source, rec.Epoch, rec.Blob)
		case jrecEvict:
			applied, aerr = b.replayEvict(rec.LSN, rec.KeyType, rec.Key, rec.Blob)
		}
		switch {
		case aerr != nil:
			// The record was intact (CRC passed) but no longer applies —
			// typically a table re-registered with different parameters.
			// Recovery keeps going: one stale record must not brick the
			// node, and the skip is logged and counted for operators.
			st.Errors++
			s.logf("server: journal replay: table %q lsn=%d: %v (record skipped)", rec.Table, rec.LSN, aerr)
		case stale:
			st.Stale++
		case applied:
			st.Records++
			if rec.TS > st.NewestTS {
				st.NewestTS = rec.TS
			}
		default:
			st.Skipped++
		}
		return nil
	}, s.cfg.Logf)
	if err != nil {
		return st, err
	}
	s.replayRecords.Store(int64(st.Records))
	s.replayTS.Store(st.NewestTS)
	if st.Files > 0 {
		s.logf("server: journal replay: %d files, %d records applied, %d already checkpointed, %d unknown-table, %d stale, %d errors, %d torn bytes truncated",
			st.Files, st.Records, st.Skipped, st.UnknownTable, st.Stale, st.Errors, st.TornBytes)
	}
	return st, nil
}

// JournalReplay reports the last boot's replay pass: how many records
// recovered state beyond the restored checkpoints, and the age of the
// newest one (ok is false when nothing was replayed). The age bounds
// how far behind the checkpoint the journal carried this process.
func (s *Server) JournalReplay() (records int64, age time.Duration, ok bool) {
	records = s.replayRecords.Load()
	ts := s.replayTS.Load()
	if ts == 0 {
		return records, 0, false
	}
	return records, time.Since(time.Unix(0, ts)), true
}

// SpillEvictString folds one evicted string key's serialized compact
// back into the named table's remote aggregate — the OnEvict hook for
// string-keyed registered tables (fcds-serve wires it when journaling
// is on). With a journal attached the spill is journaled first, so
// TTL-evicted data survives both the eviction and a crash.
func (s *Server) SpillEvictString(tableName, key string, compact []byte) error {
	b, ok := s.lookup(tableName)
	if !ok {
		return fmt.Errorf("server: unknown table %q", tableName)
	}
	return b.spillEvict(wire.KeyTypeString, []byte(key), compact)
}

// SpillEvictU64 is SpillEvictString for uint64-keyed tables.
func (s *Server) SpillEvictU64(tableName string, key uint64, compact []byte) error {
	b, ok := s.lookup(tableName)
	if !ok {
		return fmt.Errorf("server: unknown table %q", tableName)
	}
	var kb [8]byte
	k := wire.AppendUint64(kb[:0], key)
	return b.spillEvict(wire.KeyTypeUint64, k, compact)
}

// SnapshotTable captures the named table's full merged snapshot — the
// same bytes a SNAPSHOT_PULL returns: writer slots quiesced, table
// drained, every received remote snapshot merged in. This is the
// in-process hook for embedders shipping snapshots on their own
// schedule (fcds-serve's -push loop), safe while the server is
// serving and after Close.
func (s *Server) SnapshotTable(name string) ([]byte, error) {
	b, ok := s.lookup(name)
	if !ok {
		return nil, fmt.Errorf("server: unknown table %q", name)
	}
	return b.snapshotAppend(nil)
}

// Stats returns a snapshot of the server's counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	tables := len(s.tables)
	keys := 0
	for _, b := range s.tables {
		keys += b.liveKeys()
	}
	s.mu.Unlock()
	return Stats{
		Tables: tables, Keys: keys,
		Conns: s.connsOpen.Load(), ConnsTotal: s.connsSeen.Load(),
		Frames: s.frames.Load(), Items: s.items.Load(),
		Snapshots: s.snapshots.Load(), Errors: s.errs.Load(),
	}
}

// ListenAndServe listens on addr (TCP) and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Bind records ln as the server's listener so Addr reports it;
// Serve(ln) binds implicitly, but a caller starting Serve in a
// goroutine (fcds.Serve) binds first so Addr is immediately usable
// with ":0" listeners.
func (s *Server) Bind(ln net.Listener) {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
}

// Start listens on addr (TCP) and accepts in the background; Addr is
// valid as soon as Start returns. Register tables before Start so the
// first connections can never race registration and see unknown-table
// errors. A fatal accept error stops new connections while existing
// ones keep serving — it is surfaced through Config.Logf.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.Bind(ln)
	go func() {
		if err := s.Serve(ln); err != nil {
			s.logf("server: accept loop failed: %v", err)
		}
	}()
	return nil
}

// Serve accepts connections on ln until Close; it returns nil after a
// graceful Close, or the first fatal accept error. Transient accept
// failures (fd exhaustion, aborted handshakes) are retried with
// backoff instead of killing the listener.
func (s *Server) Serve(ln net.Listener) error {
	s.Bind(ln)
	var backoff time.Duration
	for {
		nc, err := ln.Accept()
		if err != nil {
			if s.closed.Load() {
				return nil
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Temporary() {
				if backoff == 0 {
					backoff = 5 * time.Millisecond
				} else if backoff *= 2; backoff > time.Second {
					backoff = time.Second
				}
				s.logf("server: accept: %v; retrying in %v", err, backoff)
				select {
				case <-time.After(backoff):
					continue
				case <-s.done:
					return nil
				}
			}
			return err
		}
		backoff = 0
		// Registration re-checks closed under the same lock Close uses
		// to interrupt connections: either this conn is registered
		// before Close scans s.conns (and gets interrupted and awaited),
		// or it observes closed and dies here — it can never slip
		// between Close's interrupt scan and wg.Wait.
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			nc.Close()
			continue
		}
		s.conns[nc] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.connsOpen.Add(1)
		s.connsSeen.Add(1)
		go s.serveConn(nc)
	}
}

// Addr returns the listener address (useful with ":0" listeners), or
// nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close drains and stops the server: the accept loop ends, every
// connection finishes the frame it is processing (a blocked read is
// interrupted), responses are flushed, and all connection goroutines
// have exited when Close returns. Registered tables are not closed —
// they belong to the caller.
func (s *Server) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(s.done)
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	now := time.Now()
	for nc := range s.conns {
		// Interrupt the connection's next (or current) blocking read;
		// frames already received keep processing and respond first.
		nc.SetReadDeadline(now)
		// Bound the response writes too: a peer that stopped reading
		// (full TCP window) would otherwise block a connection goroutine
		// in Flush forever and hang the wg.Wait below. The grace keeps
		// the drain contract — in-flight responses normally flush in
		// well under it.
		nc.SetWriteDeadline(now.Add(closeWriteGrace))
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// closeWriteGrace bounds how long a draining connection may spend
// writing its final responses after Close before its writes are cut.
const closeWriteGrace = 5 * time.Second

// connState is one connection's reusable I/O state.
type connState struct {
	wbuf []byte      // response payload assembly buffer
	req  wire.Reader // request payload cursor, reused so the pointer handed through the backend interface never escapes per frame
}

// serveConn runs one connection's frame loop.
func (s *Server) serveConn(nc net.Conn) {
	defer func() {
		// Last-resort guard: a decode or handler bug costs this
		// connection, not the process (defense in depth behind the
		// payload validation; backend lock sections unlock via defer,
		// so the unwind releases them before this recover runs).
		if p := recover(); p != nil {
			s.logf("server: %s: panic serving connection: %v", nc.RemoteAddr(), p)
		}
		nc.Close()
		s.mu.Lock()
		delete(s.conns, nc)
		s.mu.Unlock()
		s.connsOpen.Add(-1)
		s.wg.Done()
	}()

	cs := &connState{}
	fr := wire.NewFrameReader(nc, s.cfg.ReadBurst, s.cfg.MaxFrame)
	wburst := s.cfg.WriteBurst
	if wburst <= 0 {
		wburst = 64 << 10
	}
	bw := bufio.NewWriterSize(nc, wburst)
	negotiated := byte(0) // no HELLO yet
	compression := false  // HELLO-negotiated per-frame compression
	var dec wire.Decompressor

	fail := func(code uint64, msg string) {
		// Fatal protocol error: best-effort error frame, then close.
		s.errs.Add(1)
		cs.wbuf = wire.AppendErrPayload(cs.wbuf[:0], code, msg)
		ver := negotiated
		if ver == 0 {
			ver = wire.Version
		}
		_ = wire.WriteFrame(bw, ver, wire.FrameErr, cs.wbuf)
		_ = bw.Flush()
	}

	idle := s.cfg.IdleTimeout
	for {
		if idle > 0 {
			// Bound the wait for the next frame. Close may run
			// concurrently and set an immediate deadline to interrupt
			// this read; re-checking closed AFTER arming ours guarantees
			// the interrupt can never be overwritten by the idle
			// deadline (whichever order the two SetReadDeadline calls
			// land in, a closed server leaves the deadline immediate).
			nc.SetReadDeadline(time.Now().Add(idle))
			if s.closed.Load() {
				nc.SetReadDeadline(time.Now())
			}
		}
		ver, typ, flags, payload, err := fr.Next()
		if err != nil {
			if idle > 0 && errors.Is(err, os.ErrDeadlineExceeded) && !s.closed.Load() {
				s.logf("server: %s: closing idle connection (no frame in %v)", nc.RemoteAddr(), idle)
			}
			switch {
			case errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF),
				errors.Is(err, net.ErrClosed), errors.Is(err, os.ErrDeadlineExceeded):
				// Client went away or shutdown interrupted the read.
			default:
				s.logf("server: %s: read: %v", nc.RemoteAddr(), err)
				fail(wire.ErrCodeBadFrame, err.Error())
			}
			_ = bw.Flush()
			return
		}

		if negotiated == 0 {
			// The first frame must negotiate a version: a 1-byte payload
			// is the historical HELLO, a second byte carries feature bits
			// (append-only extension). Flags are never valid before
			// negotiation.
			if typ != wire.FrameHello || flags != 0 || len(payload) < 1 || len(payload) > 2 {
				fail(wire.ErrCodeBadFrame, "expected HELLO as first frame")
				return
			}
			negotiated = min(payload[0], wire.Version)
			if negotiated == 0 {
				fail(wire.ErrCodeVersion, "no common protocol version")
				return
			}
			// Echo the payload shape received: clients predating the
			// feature byte reject any reply that is not exactly 1 byte.
			cs.wbuf = append(cs.wbuf[:0], negotiated)
			if len(payload) == 2 {
				accepted := payload[1] & wire.FeatureCompression
				if s.cfg.NoCompression {
					accepted = 0
				}
				compression = accepted&wire.FeatureCompression != 0
				cs.wbuf = append(cs.wbuf, accepted)
			}
			if err := wire.WriteFrame(bw, negotiated, wire.FrameHello, cs.wbuf); err != nil {
				return
			}
			if fr.Buffered() == 0 {
				if bw.Flush() != nil {
					return
				}
			}
			continue
		}
		if ver != negotiated {
			fail(wire.ErrCodeVersion, fmt.Sprintf("frame version %d, negotiated %d", ver, negotiated))
			return
		}
		if flags != 0 && (flags != wire.FlagCompressed || !compression) {
			// An un-negotiated or unknown flag bit is a framing error —
			// the reserved-must-be-zero contract, minus exactly the bit
			// this connection's HELLO agreed on.
			fail(wire.ErrCodeBadFrame, fmt.Sprintf("unexpected frame flags %#x", flags))
			return
		}

		s.frames.Add(1)
		var tc *tableCounters
		var reqErr error
		var respType byte
		var respPayload []byte
		if flags&wire.FlagCompressed != 0 {
			// Decompression failures are request-scoped, not fatal: the
			// outer frame length was intact, so framing stays in sync and
			// the connection keeps serving after the ERR.
			if p, derr := dec.Decompress(payload, s.cfg.MaxFrame); derr == nil {
				payload = p
			} else {
				reqErr = errBadPayload("%v", derr)
			}
		}
		if reqErr == nil {
			respType, respPayload, tc, reqErr = s.handle(cs, typ, payload)
		}
		if tc != nil {
			tc.frames.Add(1)
			tc.bytes.Add(int64(len(payload)))
		}
		if reqErr != nil {
			s.errs.Add(1)
			if tc != nil {
				tc.errs.Add(1)
			}
			var re *reqError
			code := wire.ErrCodeInternal
			if errors.As(reqErr, &re) {
				code = re.code
			}
			respType = wire.FrameErr
			respPayload = wire.AppendErrPayload(cs.wbuf[:0], code, reqErr.Error())
		}
		if err := wire.WriteFrame(bw, negotiated, respType, respPayload); err != nil {
			return
		}
		// Flush only when the pipelined input is exhausted: bursts of
		// batches cost one write syscall, and the final response is
		// never stuck behind an empty read.
		if fr.Buffered() == 0 {
			if bw.Flush() != nil {
				return
			}
		}
		select {
		case <-s.done:
			_ = bw.Flush()
			return
		default:
		}
	}
}

// handle dispatches one request frame and returns the response frame
// plus the resolved table's attribution counters (nil for table-less
// frames and unknown tables). The response payload may alias cs.wbuf
// (written out before the next read reuses it).
func (s *Server) handle(cs *connState, typ byte, payload []byte) (byte, []byte, *tableCounters, error) {
	r := &cs.req
	*r = wire.Reader{Buf: payload}
	switch typ {
	case wire.FrameHello:
		// Renegotiation mid-stream is a protocol violation: answered
		// with an ERR frame, though the connection stays usable.
		return wire.FrameErr, nil, nil, errBadPayload("duplicate HELLO")

	case wire.FrameKeyedBatch, wire.FrameKeyedStringBatch:
		b, tc, _, err := s.namedBackend(r)
		if err != nil {
			return 0, nil, tc, err
		}
		n, err := b.ingest(r, typ == wire.FrameKeyedStringBatch)
		if err != nil {
			return 0, nil, tc, err
		}
		s.items.Add(int64(n))
		tc.items.Add(int64(n))
		return wire.FrameOK, nil, tc, nil

	case wire.FrameSnapshotPush:
		b, tc, name, err := s.namedBackend(r)
		if err != nil {
			return 0, nil, tc, err
		}
		// The source id is copied (r.String), not viewed: named sources
		// key the backend's per-source snapshot map, which outlives the
		// connection's read buffer.
		source := r.String()
		if r.Err != nil {
			return 0, nil, tc, errBadPayload("truncated snapshot source")
		}
		if err := b.mergeSnapshot(source, r.Rest()); err != nil {
			return 0, nil, tc, err
		}
		s.snapshots.Add(1)
		if source != "" {
			s.notePush(name, source)
		}
		return wire.FrameOK, nil, tc, nil

	case wire.FrameWindowSnapshot:
		b, tc, name, err := s.namedBackend(r)
		if err != nil {
			return 0, nil, tc, err
		}
		source := r.String()
		epoch := r.Uvarint()
		if r.Err != nil {
			return 0, nil, tc, errBadPayload("truncated window snapshot header")
		}
		if source == "" {
			return 0, nil, tc, errBadPayload("window snapshot requires a source id")
		}
		applied, err := b.mergeWindowSnapshot(source, epoch, r.Rest())
		if err != nil {
			return 0, nil, tc, err
		}
		// A stale epoch answers OK without counting: the ship is a
		// retry or reorder the receiver already covers — telling the
		// pusher "failed" would only make it retry the same bytes.
		if applied {
			s.snapshots.Add(1)
			s.notePush(name, source)
		}
		return wire.FrameOK, nil, tc, nil

	case wire.FrameSnapshotPull:
		b, tc, _, err := s.namedBackend(r)
		if err != nil {
			return 0, nil, tc, err
		}
		if r.Remaining() != 0 {
			return 0, nil, tc, errBadPayload("trailing bytes after table name")
		}
		out, err := b.snapshotAppend(cs.wbuf[:0])
		if err != nil {
			return 0, nil, tc, err
		}
		cs.wbuf = out
		return wire.FrameValue, out, tc, nil

	case wire.FrameQuery:
		b, tc, _, err := s.namedBackend(r)
		if err != nil {
			return 0, nil, tc, err
		}
		out, err := b.queryCompact(r, cs.wbuf[:0])
		if err != nil {
			return 0, nil, tc, err
		}
		cs.wbuf = out
		return wire.FrameValue, out, tc, nil

	case wire.FrameRollup:
		b, tc, _, err := s.namedBackend(r)
		if err != nil {
			return 0, nil, tc, err
		}
		if r.Remaining() != 0 {
			return 0, nil, tc, errBadPayload("trailing bytes after table name")
		}
		out, err := b.rollupAppend(cs.wbuf[:0])
		if err != nil {
			return 0, nil, tc, err
		}
		cs.wbuf = out
		return wire.FrameValue, out, tc, nil

	case wire.FrameHealth:
		st := s.Stats()
		out := cs.wbuf[:0]
		out = append(out, wire.Version)
		out = wire.AppendUvarint(out, uint64(st.Tables))
		out = wire.AppendUvarint(out, uint64(st.Keys))
		out = wire.AppendUvarint(out, uint64(st.Conns))
		out = wire.AppendUvarint(out, uint64(st.Frames))
		out = wire.AppendUvarint(out, uint64(st.Items))
		out = wire.AppendUvarint(out, uint64(st.Snapshots))
		out = wire.AppendUvarint(out, uint64(st.Errors))
		// Checkpoint age in milliseconds, clamped to >= 1 when a
		// checkpoint exists so "has one, just now" is distinguishable
		// from "never checkpointed" (0). Appended last: older clients
		// that stop after Errors still parse the payload.
		ageMS := uint64(0)
		hasCkpt := byte(0)
		if age, ok := s.CheckpointAge(); ok {
			ageMS = max(uint64(age/time.Millisecond), 1)
			hasCkpt = 1
		}
		out = wire.AppendUvarint(out, ageMS)
		// Explicit has-checkpoint flag, appended after ageMS under the
		// same append-only contract: the age alone cannot express
		// "never" once a client rounds it through its own clamping, and
		// older clients that stop after ageMS still parse.
		out = append(out, hasCkpt)
		// Journal recovery fields, appended after hasCkpt under the same
		// append-only contract: records replayed at the last boot, the
		// newest replayed record's age in milliseconds (clamped >= 1
		// when anything replayed, 0 otherwise), and whether a journal is
		// attached at all.
		replayed, replayAge, replayedOK := s.JournalReplay()
		replayAgeMS := uint64(0)
		if replayedOK {
			replayAgeMS = max(uint64(replayAge/time.Millisecond), 1)
		}
		out = wire.AppendUvarint(out, uint64(replayed))
		out = wire.AppendUvarint(out, replayAgeMS)
		hasJournal := byte(0)
		if s.journal.Load() != nil {
			hasJournal = 1
		}
		out = append(out, hasJournal)
		cs.wbuf = out
		return wire.FrameValue, out, nil, nil

	default:
		return 0, nil, nil, errBadPayload("unknown frame type 0x%02x", typ)
	}
}

// namedBackend reads the leading table name and resolves it together
// with the table's attribution counters. The returned name aliases the
// reader's buffer — copy it before retaining.
func (s *Server) namedBackend(r *wire.Reader) (backend, *tableCounters, string, error) {
	name := viewString(r.StringView())
	if r.Err != nil {
		return nil, nil, "", errBadPayload("truncated table name")
	}
	b, tc, ok := s.lookupCounters(name)
	if !ok {
		return nil, nil, "", &reqError{code: wire.ErrCodeUnknownTable, msg: fmt.Sprintf("unknown table %q", name)}
	}
	return b, tc, name, nil
}

// maxPushSources bounds the per-(table, source) push-lag map — a client
// cycling fresh source ids must not grow a gauge per push forever. Past
// the bound, new sources simply go untracked; the backends' own
// maxSnapshotSources keeps real deployments far below it.
const maxPushSources = 4096

// notePush records a successful named snapshot push so the per-source
// lag gauge can report time since the source last shipped. Runs once
// per accepted push (not per frame), so the map work and the one-time
// gauge registration are off the ingest hot path.
func (s *Server) notePush(table, source string) {
	now := time.Now().UnixNano()
	s.metricsMu.Lock()
	defer s.metricsMu.Unlock()
	k := pushKey{table, source}
	cell, ok := s.pushTimes[k]
	if !ok {
		if len(s.pushTimes) >= maxPushSources {
			return
		}
		// The map retains the key: copy the table name off the read
		// buffer it aliases (the source is already an owned copy).
		k.table = strings.Clone(table)
		cell = &atomic.Int64{}
		s.pushTimes[k] = cell
		if s.metricsReg != nil {
			registerPushLag(s.metricsReg, k, cell)
		}
	}
	cell.Store(now)
}
