//go:build goexperiment.synctest

package server_test

import (
	"net"
	"sync/atomic"
	"testing"
	"testing/synctest"

	"github.com/fcds/fcds/internal/server"
	"github.com/fcds/fcds/internal/server/client"
	"github.com/fcds/fcds/internal/table"
)

// These tests run under Go's synctest bubble (GOEXPERIMENT=synctest):
// connections are in-memory pipes with virtual deadlines, so accept,
// in-flight drain and shutdown interleavings are deterministic — no
// wall-clock sleeps, no port races.

// chanListener is a net.Listener fed by a channel — the in-bubble
// stand-in for a TCP accept loop.
type chanListener struct {
	ch     chan net.Conn
	done   chan struct{}
	closed atomic.Bool
}

func newChanListener() *chanListener {
	return &chanListener{ch: make(chan net.Conn), done: make(chan struct{})}
}

func (l *chanListener) Accept() (net.Conn, error) {
	select {
	case nc := <-l.ch:
		return nc, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *chanListener) Close() error {
	if l.closed.CompareAndSwap(false, true) {
		close(l.done)
	}
	return nil
}

type pipeAddr struct{}

func (pipeAddr) Network() string { return "pipe" }
func (pipeAddr) String() string  { return "pipe" }

func (l *chanListener) Addr() net.Addr { return pipeAddr{} }

// dialPipe connects a client through the listener via an in-memory
// pipe.
func dialPipe(t *testing.T, l *chanListener) *client.Client {
	t.Helper()
	cEnd, sEnd := net.Pipe()
	l.ch <- sEnd
	c, err := client.New(cEnd)
	if err != nil {
		t.Fatalf("pipe dial: %v", err)
	}
	return c
}

// TestSynctestShutdownDrainsInFlight pins the drain contract: every
// frame the server has received before Close is processed and
// acknowledged, the responses are flushed, and only then do the
// connections and the accept loop go down — all its ingested data is
// queryable from the table afterwards.
func TestSynctestShutdownDrainsInFlight(t *testing.T) {
	synctest.Run(func() {
		tab := table.NewTheta(table.ThetaConfig[string]{
			Table: table.Config[string]{Writers: 2, Shards: 16},
			K:     2048, MaxError: 1,
		})
		defer tab.Close()
		s := server.New(server.Config{})
		if err := server.RegisterTheta(s, "ev", tab); err != nil {
			t.Fatal(err)
		}
		ln := newChanListener()
		serveDone := make(chan error, 1)
		go func() { serveDone <- s.Serve(ln) }()

		c := dialPipe(t, ln)
		c2 := dialPipe(t, ln)

		const batches = 20
		keys := make([]string, 32)
		vals := make([]uint64, 32)
		next := uint64(0)
		for b := 0; b < batches; b++ {
			for i := range keys {
				keys[i] = "k" // one key: every update distinct
				vals[i] = next
				next++
			}
			target := c
			if b%2 == 1 {
				target = c2
			}
			if err := target.Ingest("ev", keys, vals); err != nil {
				t.Fatal(err)
			}
		}
		// Flush returns once every batch is acknowledged — i.e. the
		// server has fully processed each one (pipes are synchronous, so
		// nothing is in flight in a kernel buffer either).
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := c2.Flush(); err != nil {
			t.Fatal(err)
		}

		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		if err := <-serveDone; err != nil {
			t.Fatalf("Serve returned %v after graceful Close", err)
		}
		synctest.Wait()

		// All in-flight data landed: with the server gone we are the
		// only writer, so Drain is safe and the count is exact.
		tab.Drain()
		est, ok := tab.Estimate("k")
		if !ok || est != float64(batches*len(keys)) {
			t.Fatalf("post-drain estimate = %v (ok=%v), want %d", est, ok, batches*len(keys))
		}

		// The connections are really closed: the next call fails.
		if _, err := c.Health(); err == nil {
			t.Fatal("Health succeeded on a drained connection")
		}
		_ = c.Close()
		_ = c2.Close()
	})
}

// TestSynctestCloseInterruptsIdleRead pins shutdown liveness: a
// connection blocked in a frame read (idle client) does not stall
// Close — the read is interrupted and the goroutine exits.
func TestSynctestCloseInterruptsIdleRead(t *testing.T) {
	synctest.Run(func() {
		s := server.New(server.Config{})
		ln := newChanListener()
		serveDone := make(chan error, 1)
		go func() { serveDone <- s.Serve(ln) }()

		c := dialPipe(t, ln) // negotiates HELLO, then sits idle
		synctest.Wait()      // server conn goroutine is now blocked reading

		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		if err := <-serveDone; err != nil {
			t.Fatalf("Serve returned %v", err)
		}
		if _, err := c.Health(); err == nil {
			t.Fatal("Health succeeded after server close")
		}
		_ = c.Close()
	})
}

// TestSynctestLateDialRejected pins the accept-side contract: a
// connection arriving after Close is closed immediately, and Close is
// idempotent.
func TestSynctestLateDialRejected(t *testing.T) {
	synctest.Run(func() {
		s := server.New(server.Config{})
		ln := newChanListener()
		serveDone := make(chan error, 1)
		go func() { serveDone <- s.Serve(ln) }()
		synctest.Wait()

		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil { // idempotent
			t.Fatal(err)
		}
		if err := <-serveDone; err != nil {
			t.Fatalf("Serve returned %v", err)
		}

		// The listener is down: a late pipe has no accept loop to pick
		// it up, and client-side negotiation fails once the pipe dies.
		cEnd, _ := net.Pipe()
		errc := make(chan error, 1)
		go func() {
			_, err := client.New(cEnd)
			errc <- err
		}()
		synctest.Wait() // client blocked writing HELLO into a dead pipe
		cEnd.Close()
		if err := <-errc; err == nil {
			t.Fatal("dial after close succeeded")
		}
	})
}
