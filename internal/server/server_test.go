package server_test

import (
	"errors"
	"fmt"
	"net"
	"testing"

	"github.com/fcds/fcds/internal/quantiles"
	"github.com/fcds/fcds/internal/server"
	"github.com/fcds/fcds/internal/server/client"
	"github.com/fcds/fcds/internal/server/wire"
	"github.com/fcds/fcds/internal/table"
	"github.com/fcds/fcds/internal/theta"
)

// startServer spins up a server on a loopback listener and returns it
// with its address; cleanup closes it.
func startServer(t *testing.T, cfg server.Config) (*server.Server, string) {
	t.Helper()
	s := server.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = s.Serve(ln) }()
	t.Cleanup(func() { s.Close() })
	return s, ln.Addr().String()
}

func newThetaTable(t *testing.T, writers int) *table.ThetaTable[string] {
	t.Helper()
	tab := table.NewTheta(table.ThetaConfig[string]{
		Table: table.Config[string]{Writers: writers, Shards: 16},
		K:     2048, MaxError: 1,
	})
	t.Cleanup(tab.Close)
	return tab
}

// TestServerIngestQueryRollup drives the whole request surface over one
// connection: keyed batches, string-item batches, per-key queries,
// rollup and health.
func TestServerIngestQueryRollup(t *testing.T) {
	tab := newThetaTable(t, 2)
	s, addr := startServer(t, server.Config{})
	if err := server.RegisterTheta(s, "ev", tab); err != nil {
		t.Fatal(err)
	}

	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Version() != wire.Version {
		t.Fatalf("negotiated version %d", c.Version())
	}

	// 3 keys, disjoint items; key "a" additionally gets string items.
	keys := []string{"a", "b", "c", "a", "b", "c"}
	vals := []uint64{1, 2, 3, 4, 5, 6}
	for i := 0; i < 50; i++ {
		for j := range vals {
			vals[j] += 100
		}
		if err := c.Ingest("ev", keys, vals); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.IngestStrings("ev", []string{"a", "a"}, []string{"x", "y"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	// Per-key queries are relaxed (they may miss updates buffered in
	// writer slots); a snapshot pull drains the table, so everything
	// ingested above is visible and the assertions below are exact.
	if _, err := c.PullSnapshot("ev"); err != nil {
		t.Fatal(err)
	}

	kind, blob, found, err := c.QueryCompact("ev", "a")
	if err != nil || !found {
		t.Fatalf("query a: found=%v err=%v", found, err)
	}
	if kind != 1 {
		t.Fatalf("query kind = %d, want KindTheta", kind)
	}
	ca, err := theta.UnmarshalCompact(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got := ca.Estimate(); got != 102 { // 50 batches × 2 items + 2 string items
		t.Fatalf("key a estimate = %v, want 102", got)
	}
	if _, _, found, err := c.QueryCompact("ev", "nope"); err != nil || found {
		t.Fatalf("missing key: found=%v err=%v", found, err)
	}

	kind, blob, err = c.Rollup("ev")
	if err != nil || kind != 1 {
		t.Fatalf("rollup: kind=%d err=%v", kind, err)
	}
	ru, err := theta.UnmarshalCompact(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got := ru.Estimate(); got != 302 { // 300 distinct uint64 items + 2 strings
		t.Fatalf("rollup estimate = %v, want 302", got)
	}

	h, err := c.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.Tables != 1 || h.Keys != 3 || h.Items != 302 || h.Errors != 0 {
		t.Fatalf("health = %+v", h)
	}

	// The in-process snapshot hook (the fcds-serve push path) returns
	// the same drained, merged image as a wire pull — including after
	// Close, which is when the final shutdown push runs.
	checkSnap := func(when string) {
		blob, err := s.SnapshotTable("ev")
		if err != nil {
			t.Fatalf("SnapshotTable %s: %v", when, err)
		}
		snap, err := table.UnmarshalThetaSnapshot[string](blob)
		if err != nil {
			t.Fatalf("SnapshotTable %s: parse: %v", when, err)
		}
		if snap.Len() != 3 {
			t.Fatalf("SnapshotTable %s: %d keys, want 3", when, snap.Len())
		}
		ca, ok := snap.Get("a")
		if !ok || ca.Estimate() != 102 {
			t.Fatalf("SnapshotTable %s: key a = %v (ok=%v), want 102", when, ca, ok)
		}
	}
	checkSnap("live")
	if _, err := s.SnapshotTable("missing"); err == nil {
		t.Fatal("SnapshotTable on unknown table succeeded")
	}
	c.Close()
	s.Close()
	checkSnap("after Close")
}

// TestServerErrors pins the per-request error paths: unknown table,
// key-type mismatch, unsupported family operation — all as typed
// server errors on a connection that stays usable.
func TestServerErrors(t *testing.T) {
	tab := newThetaTable(t, 1)
	qt := table.NewQuantiles(table.QuantilesConfig[string]{
		Table: table.Config[string]{Writers: 1, Shards: 16},
	})
	t.Cleanup(qt.Close)

	s, addr := startServer(t, server.Config{})
	if err := server.RegisterTheta(s, "ev", tab); err != nil {
		t.Fatal(err)
	}
	if err := server.RegisterQuantiles(s, "lat", qt); err != nil {
		t.Fatal(err)
	}
	// Duplicate registration fails.
	if err := server.RegisterTheta(s, "ev", tab); err == nil {
		t.Fatal("duplicate register succeeded")
	}

	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	expectCode := func(err error, code uint64, what string) {
		t.Helper()
		var se *client.ServerError
		if !errors.As(err, &se) || se.Code != code {
			t.Fatalf("%s: err=%v, want server code %d", what, err, code)
		}
	}

	_, _, err = c.Rollup("missing")
	expectCode(err, wire.ErrCodeUnknownTable, "unknown table")

	// uint64 keys into a string-keyed table.
	if err := c.IngestU64("ev", []uint64{1}, []uint64{2}); err != nil {
		t.Fatal(err)
	}
	expectCode(c.Flush(), wire.ErrCodeBadPayload, "key type mismatch")

	// String items into a quantiles table.
	if err := c.IngestStrings("lat", []string{"k"}, []string{"v"}); err != nil {
		t.Fatal(err)
	}
	expectCode(c.Flush(), wire.ErrCodeUnsupported, "string items on quantiles")

	// The connection survives request errors.
	if err := c.Ingest("ev", []string{"k"}, []uint64{7}); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("post-error ingest: %v", err)
	}
	if _, _, found, err := c.QueryCompact("ev", "k"); err != nil || !found {
		t.Fatalf("post-error query: found=%v err=%v", found, err)
	}

	// Errors were counted.
	if st := s.Stats(); st.Errors != 3 {
		t.Fatalf("stats errors = %d, want 3", st.Errors)
	}
}

// TestServerQuantiles covers the float-value wire path end to end.
func TestServerQuantiles(t *testing.T) {
	qt := table.NewQuantiles(table.QuantilesConfig[string]{
		Table: table.Config[string]{Writers: 1, Shards: 16},
		K:     128,
	})
	t.Cleanup(qt.Close)
	s, addr := startServer(t, server.Config{})
	if err := server.RegisterQuantiles(s, "lat", qt); err != nil {
		t.Fatal(err)
	}
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	keys := make([]string, 500)
	vals := make([]float64, 500)
	for i := range keys {
		keys[i] = "api"
		vals[i] = float64(i)
	}
	if err := c.IngestFloat("lat", keys, vals); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PullSnapshot("lat"); err != nil { // drain: exact N below
		t.Fatal(err)
	}
	_, blob, found, err := c.QueryCompact("lat", "api")
	if err != nil || !found {
		t.Fatalf("query: found=%v err=%v", found, err)
	}
	sk, err := qt.Engine().UnmarshalCompact(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got := sk.Snapshot().N(); got != 500 {
		t.Fatalf("sample count over the wire = %d, want 500", got)
	}
}

// TestServerRejectsGarbage pins the fatal paths: a first frame that is
// not HELLO, and a frame version the server never negotiated.
func TestServerRejectsGarbage(t *testing.T) {
	s, addr := startServer(t, server.Config{})
	_ = s

	// Not-HELLO first frame: server answers ERR and closes.
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if err := wire.WriteFrame(nc, wire.Version, wire.FrameHealth, nil); err != nil {
		t.Fatal(err)
	}
	var buf []byte
	_, typ, payload, err := wire.ReadFrame(nc, &buf, 0)
	if err != nil || typ != wire.FrameErr {
		t.Fatalf("first response: typ=%#x err=%v", typ, err)
	}
	code, _, err := wire.ParseErrPayload(payload)
	if err != nil || code != wire.ErrCodeBadFrame {
		t.Fatalf("error code = %d (%v), want ErrCodeBadFrame", code, err)
	}
	if _, _, _, err := wire.ReadFrame(nc, &buf, 0); err == nil {
		t.Fatal("connection stayed open after fatal error")
	}

	// Wrong version after negotiation.
	nc2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc2.Close()
	if err := wire.WriteFrame(nc2, wire.Version, wire.FrameHello, []byte{wire.Version}); err != nil {
		t.Fatal(err)
	}
	if _, typ, _, err = wire.ReadFrame(nc2, &buf, 0); err != nil || typ != wire.FrameHello {
		t.Fatalf("hello response: typ=%#x err=%v", typ, err)
	}
	if err := wire.WriteFrame(nc2, 99, wire.FrameHealth, nil); err != nil {
		t.Fatal(err)
	}
	_, typ, payload, err = wire.ReadFrame(nc2, &buf, 0)
	if err != nil || typ != wire.FrameErr {
		t.Fatalf("version-mismatch response: typ=%#x err=%v", typ, err)
	}
	if code, _, _ := wire.ParseErrPayload(payload); code != wire.ErrCodeVersion {
		t.Fatalf("error code = %d, want ErrCodeVersion", code)
	}
}

// TestServerSurvivesHugeBatchCount pins the count-overflow guard: a
// KEYED_BATCH claiming >= 2^63 entries used to convert to a negative
// int, bypass the payload bound and panic the whole process slicing
// the scratch. It must instead earn an ERR frame on a connection (and
// server) that keeps working.
func TestServerSurvivesHugeBatchCount(t *testing.T) {
	tab := newThetaTable(t, 1)
	s, addr := startServer(t, server.Config{})
	if err := server.RegisterTheta(s, "ev", tab); err != nil {
		t.Fatal(err)
	}
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if err := wire.WriteFrame(nc, wire.Version, wire.FrameHello, []byte{wire.Version}); err != nil {
		t.Fatal(err)
	}
	var buf []byte
	if _, typ, _, err := wire.ReadFrame(nc, &buf, 0); err != nil || typ != wire.FrameHello {
		t.Fatalf("hello: typ=%#x err=%v", typ, err)
	}

	payload := wire.AppendString(nil, "ev")
	payload = append(payload, wire.KeyTypeString)
	payload = wire.AppendUvarint(payload, 1<<63) // negative as int
	if err := wire.WriteFrame(nc, wire.Version, wire.FrameKeyedBatch, payload); err != nil {
		t.Fatal(err)
	}
	_, typ, resp, err := wire.ReadFrame(nc, &buf, 0)
	if err != nil || typ != wire.FrameErr {
		t.Fatalf("huge-count response: typ=%#x err=%v", typ, err)
	}
	if code, _, _ := wire.ParseErrPayload(resp); code != wire.ErrCodeBadPayload {
		t.Fatalf("error code = %d, want ErrCodeBadPayload", code)
	}

	// The connection and the server survived.
	if err := wire.WriteFrame(nc, wire.Version, wire.FrameHealth, nil); err != nil {
		t.Fatal(err)
	}
	if _, typ, _, err := wire.ReadFrame(nc, &buf, 0); err != nil || typ != wire.FrameValue {
		t.Fatalf("post-error health: typ=%#x err=%v", typ, err)
	}
}

// TestSnapshotPushSourceReplace pins the per-source replace contract:
// a node re-shipping its full cumulative snapshot under one source id
// counts once no matter how many times it ships (the -push loop),
// anonymous pushes keep merge semantics, and distinct sources
// aggregate.
func TestSnapshotPushSourceReplace(t *testing.T) {
	const n = 500
	newQT := func() *table.QuantilesTable[string] {
		qt := table.NewQuantiles(table.QuantilesConfig[string]{
			Table: table.Config[string]{Writers: 1, Shards: 16},
			K:     128,
		})
		t.Cleanup(qt.Close)
		return qt
	}
	s, addr := startServer(t, server.Config{})
	if err := server.RegisterQuantiles(s, "lat", newQT()); err != nil {
		t.Fatal(err)
	}
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Build a snapshot blob with n samples under one key.
	src := newQT()
	w := src.Writer(0)
	keys := make([]string, n)
	vals := make([]float64, n)
	for i := range keys {
		keys[i], vals[i] = "api", float64(i)
	}
	w.UpdateKeyedBatch(keys, vals)
	src.Drain()
	blob, err := src.Snapshot().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	sampleCount := func(what string) uint64 {
		t.Helper()
		_, qblob, found, err := c.QueryCompact("lat", "api")
		if err != nil || !found {
			t.Fatalf("%s: query: found=%v err=%v", what, found, err)
		}
		sk, err := quantiles.Unmarshal(qblob)
		if err != nil {
			t.Fatalf("%s: %v", what, err)
		}
		return sk.Snapshot().N()
	}

	// Cumulative re-ships from one source replace: still n after three.
	for i := 0; i < 3; i++ {
		if err := c.PushSnapshotFrom("lat", "edge-1", blob); err != nil {
			t.Fatal(err)
		}
	}
	if got := sampleCount("same source"); got != n {
		t.Fatalf("after 3 pushes from one source: n = %d, want %d", got, n)
	}

	// A second source aggregates with the first.
	if err := c.PushSnapshotFrom("lat", "edge-2", blob); err != nil {
		t.Fatal(err)
	}
	if got := sampleCount("second source"); got != 2*n {
		t.Fatalf("two sources: n = %d, want %d", got, 2*n)
	}

	// Anonymous pushes merge — each one counts.
	for i := 0; i < 2; i++ {
		if err := c.PushSnapshot("lat", blob); err != nil {
			t.Fatal(err)
		}
	}
	if got := sampleCount("anonymous"); got != 4*n {
		t.Fatalf("after 2 anonymous pushes: n = %d, want %d", got, 4*n)
	}

	// The pulled (and shipped-downstream) snapshot folds all of it.
	pulled, err := c.PullSnapshot("lat")
	if err != nil {
		t.Fatal(err)
	}
	snap, err := table.UnmarshalQuantilesSnapshot[string](pulled)
	if err != nil {
		t.Fatal(err)
	}
	sk, ok := snap.Get("api")
	if !ok {
		t.Fatal("pulled snapshot: key api missing")
	}
	if got := sk.Snapshot().N(); got != 4*n {
		t.Fatalf("pulled snapshot: n = %d, want %d", got, 4*n)
	}
}

// TestSnapshotPushSourceCapFolds pins the named-source bound: pushing
// from more distinct sources than maxSnapshotSources (1024) must keep
// succeeding — the oldest sources fold into the shared aggregate — and
// no shipped data may be lost on the way.
func TestSnapshotPushSourceCapFolds(t *testing.T) {
	tab := newThetaTable(t, 1)
	s, addr := startServer(t, server.Config{})
	if err := server.RegisterTheta(s, "ev", tab); err != nil {
		t.Fatal(err)
	}
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Each source ships the cumulative snapshot of one growing table —
	// Θ merges are idempotent, so folds and replaces both preserve the
	// full item set and the final rollup pins losslessness exactly.
	src := newThetaTable(t, 1)
	w := src.Writer(0)
	const sources = 1030 // past the 1024 cap
	for i := 0; i < sources; i++ {
		w.UpdateKeyedBatch([]string{"k"}, []uint64{uint64(i)})
		src.Drain()
		blob, err := src.Snapshot().MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if err := c.PushSnapshotFrom("ev", fmt.Sprintf("src-%04d", i), blob); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	_, rblob, err := c.Rollup("ev")
	if err != nil {
		t.Fatal(err)
	}
	ru, err := theta.UnmarshalCompact(rblob)
	if err != nil {
		t.Fatal(err)
	}
	if got := ru.Estimate(); got != sources {
		t.Fatalf("rollup estimate = %v, want %d (data lost across the cap fold)", got, sources)
	}
}

// TestSnapshotPushSeedMismatchRejected pins the pre-merge seed check:
// a Θ snapshot hashed under a foreign seed must be rejected at push
// time with a payload error — not ACKed and stored where it would
// poison every later query, rollup and pull.
func TestSnapshotPushSeedMismatchRejected(t *testing.T) {
	tab := newThetaTable(t, 1) // default seed
	s, addr := startServer(t, server.Config{})
	if err := server.RegisterTheta(s, "ev", tab); err != nil {
		t.Fatal(err)
	}
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	foreign := table.NewTheta(table.ThetaConfig[string]{
		Table: table.Config[string]{Writers: 1, Shards: 16},
		K:     2048, MaxError: 1, Seed: 0xfeedbeef,
	})
	t.Cleanup(foreign.Close)
	foreign.Writer(0).UpdateKeyedBatch([]string{"a", "a"}, []uint64{1, 2})
	foreign.Drain()
	blob, err := foreign.Snapshot().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	var se *client.ServerError
	for _, source := range []string{"", "edge-1"} { // merge and replace paths
		err := c.PushSnapshotFrom("ev", source, blob)
		if !errors.As(err, &se) || se.Code != wire.ErrCodeBadPayload {
			t.Fatalf("push (source %q): err=%v, want ErrCodeBadPayload", source, err)
		}
	}

	// Nothing was stored: ingest + rollup still work over the wire.
	if err := c.Ingest("ev", []string{"a"}, []uint64{7}); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PullSnapshot("ev"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Rollup("ev"); err != nil {
		t.Fatalf("rollup after rejected push: %v", err)
	}
}

// TestClientDownshift pins negotiation: a client offering a version
// beyond the server's settles on the server's.
func TestClientDownshift(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if err := wire.WriteFrame(nc, 7, wire.FrameHello, []byte{7}); err != nil {
		t.Fatal(err)
	}
	var buf []byte
	_, typ, payload, err := wire.ReadFrame(nc, &buf, 0)
	if err != nil || typ != wire.FrameHello || len(payload) != 1 || payload[0] != wire.Version {
		t.Fatalf("downshift: typ=%#x payload=% x err=%v", typ, payload, err)
	}
}
