//go:build goexperiment.synctest

package server_test

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"sync/atomic"
	"testing"
	"testing/synctest"
	"time"

	"github.com/fcds/fcds/internal/quantiles"
	"github.com/fcds/fcds/internal/server"
	"github.com/fcds/fcds/internal/server/client"
	"github.com/fcds/fcds/internal/server/faultconn"
	"github.com/fcds/fcds/internal/table"
	"github.com/fcds/fcds/internal/theta"
)

// Fault-injection suite: every test runs in a synctest bubble, so the
// backoff schedules, idle deadlines and kill/restart interleavings
// ride virtual time — minutes of failure handling replay in
// microseconds, deterministically. Test names carry the SynctestFault
// prefix the CI server-faults lane selects on.

// faultTrio is one node's three tables plus their registrations:
// theta "ev" (string), quantiles "lat" (string), HLL "dev" (uint64).
type faultTrio struct {
	ev  *table.ThetaTable[string]
	lat *table.QuantilesTable[string]
	dev *table.HLLTable[uint64]
}

func newFaultTrio(t *testing.T, s *server.Server) *faultTrio {
	t.Helper()
	tr := &faultTrio{
		ev: table.NewTheta(table.ThetaConfig[string]{
			Table: table.Config[string]{Writers: 1, Shards: 8},
			K:     1024, MaxError: 1,
		}),
		lat: table.NewQuantiles(table.QuantilesConfig[string]{
			Table: table.Config[string]{Writers: 1, Shards: 8},
			K:     128,
		}),
		dev: table.NewHLL(table.HLLConfig[uint64]{
			Table:     table.Config[uint64]{Writers: 1, Shards: 8},
			Precision: 11,
		}),
	}
	if err := server.RegisterTheta(s, "ev", tr.ev); err != nil {
		t.Fatal(err)
	}
	if err := server.RegisterQuantiles(s, "lat", tr.lat); err != nil {
		t.Fatal(err)
	}
	if err := server.RegisterHLL(s, "dev", tr.dev); err != nil {
		t.Fatal(err)
	}
	return tr
}

func (tr *faultTrio) close() {
	tr.ev.Close()
	tr.lat.Close()
	tr.dev.Close()
}

var trioTables = []string{"ev", "lat", "dev"}

// compareRollups asserts that two servers answer every family's rollup
// identically: exact estimates for theta and HLL, exact sample count
// plus statistical quantiles for the quantiles family (merge order is
// allowed to differ). quantN is the expected total sample count; when
// uniform01 is true the quantile stream was a shuffled 0..quantN-1
// permutation and quantiles are checked against uniform ranks.
func compareRollups(t *testing.T, got, want *client.Client, quantN uint64) {
	t.Helper()
	// A snapshot pull quiesces the writer slots and drains each table,
	// so the rollups compare fully-propagated state on both sides.
	for _, tbl := range trioTables {
		if _, err := got.PullSnapshot(tbl); err != nil {
			t.Fatalf("drain %s: %v", tbl, err)
		}
		if _, err := want.PullSnapshot(tbl); err != nil {
			t.Fatalf("drain %s: %v", tbl, err)
		}
	}
	rollup := func(c *client.Client, tbl string) []byte {
		t.Helper()
		_, blob, err := c.Rollup(tbl)
		if err != nil {
			t.Fatalf("rollup %s: %v", tbl, err)
		}
		return blob
	}
	gotEv, err := theta.UnmarshalCompact(rollup(got, "ev"))
	if err != nil {
		t.Fatal(err)
	}
	wantEv, err := theta.UnmarshalCompact(rollup(want, "ev"))
	if err != nil {
		t.Fatal(err)
	}
	if gotEv.Estimate() != wantEv.Estimate() {
		t.Fatalf("ev estimate = %v, failure-free run = %v", gotEv.Estimate(), wantEv.Estimate())
	}
	_, hllEng := table.HLLConfig[uint64]{Precision: 11}.Engine()
	gotDev, err := hllEng.UnmarshalCompact(rollup(got, "dev"))
	if err != nil {
		t.Fatal(err)
	}
	wantDev, err := hllEng.UnmarshalCompact(rollup(want, "dev"))
	if err != nil {
		t.Fatal(err)
	}
	if gotDev.Estimate() != wantDev.Estimate() {
		t.Fatalf("dev estimate = %v, failure-free run = %v", gotDev.Estimate(), wantDev.Estimate())
	}
	gotLat, err := quantiles.Unmarshal(rollup(got, "lat"))
	if err != nil {
		t.Fatal(err)
	}
	wantLat, err := quantiles.Unmarshal(rollup(want, "lat"))
	if err != nil {
		t.Fatal(err)
	}
	gs, ws := gotLat.Snapshot(), wantLat.Snapshot()
	if gs.N() != ws.N() || gs.N() != quantN {
		t.Fatalf("lat N = %d, failure-free = %d, want both %d", gs.N(), ws.N(), quantN)
	}
	eps := 4 * quantiles.NormalizedRankError(128)
	n := float64(quantN)
	for _, phi := range []float64{0.05, 0.5, 0.95} {
		if dev := math.Abs(gs.Quantile(phi)/n - phi); dev > eps {
			t.Fatalf("recovered q(%v) rank dev %.4f > %.4f", phi, dev, eps)
		}
	}
}

// TestSynctestFaultReconnectBackoffSchedule pins the reconnect
// schedule exactly: attempts spaced by MinBackoff doubling per
// failure, each stretched by at most JitterFrac, capped at MaxBackoff.
// Virtual time makes the multi-second schedule instant and exact.
func TestSynctestFaultReconnectBackoffSchedule(t *testing.T) {
	synctest.Run(func() {
		attempts := make(chan time.Time, 32)
		r, err := client.NewReliable(client.ReliableConfig{
			Dial: func() (*client.Client, error) {
				attempts <- time.Now()
				return nil, errors.New("upstream down")
			},
			MinBackoff: 100 * time.Millisecond,
			MaxBackoff: 30 * time.Second,
			JitterFrac: 0.2,
			Seed:       7,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := r.ShipSnapshot("t", "edge", []byte{0}); err != nil {
			t.Fatal(err)
		}
		ts := make([]time.Time, 0, 8)
		for len(ts) < 8 {
			ts = append(ts, <-attempts)
		}
		r.Close()

		// First attempt is immediate; gap i is 100ms·2^(i-1), plus at
		// most 20% jitter, never past the 30s cap.
		base := 100 * time.Millisecond
		for i := 1; i < len(ts); i++ {
			gap := ts[i].Sub(ts[i-1])
			lo := base
			hi := base + base/5
			if gap < lo || gap > hi {
				t.Fatalf("gap %d = %v, want within [%v, %v]", i, gap, lo, hi)
			}
			if base *= 2; base > 30*time.Second {
				base = 30 * time.Second
			}
		}
		if st := r.Stats(); st.Dials < 8 || st.State != client.StateClosed {
			t.Fatalf("stats = %+v, want >= 8 dials and closed", st)
		}
	})
}

// TestSynctestFaultSeverEveryNthFrameNoLoss is the acceptance
// schedule's first half: every connection to the aggregator is severed
// after a fixed number of I/O ops while an edge ships cumulative
// snapshots for all three families through one Reliable. Because
// re-delivery replaces per source, the aggregator's final rollup must
// equal the edge's own table state exactly — nothing lost, nothing
// double-counted, no matter where in a frame the connection died.
func TestSynctestFaultSeverEveryNthFrameNoLoss(t *testing.T) {
	synctest.Run(func() {
		aggSrv := server.New(server.Config{})
		aggTrio := newFaultTrio(t, aggSrv)
		defer aggTrio.close()
		ln := newChanListener()
		go func() { _ = aggSrv.Serve(ln) }()
		defer aggSrv.Close()

		// The edge's tables live behind a non-listening server so
		// SnapshotTable provides the same quiesced capture fcds-serve
		// ships.
		edgeSrv := server.New(server.Config{})
		edgeTrio := newFaultTrio(t, edgeSrv)
		defer edgeTrio.close()

		var connSeq, severs atomic.Int64
		fcfg := faultconn.Config{
			Seed:          0xfa11,
			SeverAfterOps: 25,
			OnFault: func(conn int, op string, n int, fault string) {
				severs.Add(1)
			},
		}
		dial := func() (*client.Client, error) {
			cEnd, sEnd := net.Pipe()
			select {
			case ln.ch <- faultconn.Wrap(sEnd, int(connSeq.Add(1)), fcfg):
			case <-ln.done:
				cEnd.Close()
				return nil, errors.New("aggregator down")
			}
			return client.New(cEnd)
		}
		rel, err := client.NewReliable(client.ReliableConfig{
			Dial:       dial,
			MinBackoff: 10 * time.Millisecond,
			MaxBackoff: 100 * time.Millisecond,
			Seed:       3,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer rel.Close()

		rng := rand.New(rand.NewSource(0xbeef))
		const rounds, quantPerRound = 8, 400
		perm := rng.Perm(rounds * quantPerRound)
		evW, latW, devW := edgeTrio.ev.Writer(0), edgeTrio.lat.Writer(0), edgeTrio.dev.Writer(0)
		for round := 0; round < rounds; round++ {
			n := 50 + rng.Intn(200)
			keys := make([]string, n)
			ukeys := make([]uint64, n)
			vals := make([]uint64, n)
			for i := range keys {
				keys[i] = fmt.Sprintf("key-%d", rng.Intn(10))
				ukeys[i] = rng.Uint64() % 10
				vals[i] = rng.Uint64() % 3000
			}
			evW.UpdateKeyedBatch(keys, vals)
			devW.UpdateKeyedBatch(ukeys, vals)
			qk := make([]string, quantPerRound)
			qv := make([]float64, quantPerRound)
			for i := range qk {
				qk[i] = "api"
				qv[i] = float64(perm[round*quantPerRound+i])
			}
			latW.UpdateKeyedBatch(qk, qv)

			for _, tbl := range trioTables {
				blob, err := edgeSrv.SnapshotTable(tbl)
				if err != nil {
					t.Fatal(err)
				}
				if err := rel.ShipSnapshot(tbl, "edge-1", blob); err != nil {
					t.Fatal(err)
				}
			}
			time.Sleep(20 * time.Millisecond) // let deliveries and severs interleave
		}
		if err := rel.Drain(time.Hour); err != nil {
			t.Fatal(err)
		}
		if severs.Load() == 0 {
			t.Fatal("fault schedule never severed a connection — the test exercised nothing")
		}
		if st := rel.Stats(); st.Dials < 2 || st.Dropped != 0 {
			t.Fatalf("stats = %+v, want reconnections and zero drops", st)
		}

		// The aggregator's view (over a clean connection) equals the
		// edge's own state: compare against a rollup served straight
		// from the edge's tables.
		aggC := dialPipe(t, ln)
		defer aggC.Close()
		edgeLn := newChanListener()
		go func() { _ = edgeSrv.Serve(edgeLn) }()
		defer edgeSrv.Close()
		edgeC := dialPipe(t, edgeLn)
		defer edgeC.Close()
		compareRollups(t, aggC, edgeC, uint64(rounds*quantPerRound))
	})
}

// TestSynctestFaultKillRestartAggregatorRecovers is the acceptance
// schedule's second half: the aggregator is killed and restarted twice
// mid-run, recovering from checkpoints each time, while an edge keeps
// shipping through a Reliable and direct writers keep ingesting. The
// final recovered rollup must exactly equal a failure-free twin
// aggregator that saw the same traffic with no kills.
func TestSynctestFaultKillRestartAggregatorRecovers(t *testing.T) {
	synctest.Run(func() {
		dir := t.TempDir()

		type incarnation struct {
			srv  *server.Server
			ln   *chanListener
			trio *faultTrio
		}
		start := func() *incarnation {
			srv := server.New(server.Config{})
			trio := newFaultTrio(t, srv)
			if _, err := srv.RestoreCheckpoints(dir); err != nil {
				t.Fatalf("restore: %v", err)
			}
			ln := newChanListener()
			go func() { _ = srv.Serve(ln) }()
			return &incarnation{srv: srv, ln: ln, trio: trio}
		}
		var cur atomic.Pointer[chanListener]
		inc := start()
		cur.Store(inc.ln)

		// The failure-free twin: same traffic, never killed.
		expSrv := server.New(server.Config{})
		expTrio := newFaultTrio(t, expSrv)
		defer expTrio.close()
		expLn := newChanListener()
		go func() { _ = expSrv.Serve(expLn) }()
		defer expSrv.Close()
		expC := dialPipe(t, expLn)
		defer expC.Close()

		dial := func() (*client.Client, error) {
			ln := cur.Load()
			if ln == nil {
				return nil, errors.New("aggregator down")
			}
			cEnd, sEnd := net.Pipe()
			select {
			case ln.ch <- sEnd:
			case <-ln.done:
				cEnd.Close()
				return nil, errors.New("aggregator down")
			}
			return client.New(cEnd)
		}
		rel, err := client.NewReliable(client.ReliableConfig{
			Dial:       dial,
			MinBackoff: 10 * time.Millisecond,
			MaxBackoff: 200 * time.Millisecond,
			Seed:       11,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer rel.Close()

		// Edge tables behind a snapshot-capture server, as fcds-serve
		// runs them.
		edgeSrv := server.New(server.Config{})
		edgeTrio := newFaultTrio(t, edgeSrv)
		defer edgeTrio.close()
		evW, latW, devW := edgeTrio.ev.Writer(0), edgeTrio.lat.Writer(0), edgeTrio.dev.Writer(0)

		rng := rand.New(rand.NewSource(0xdead))
		const phases, directQ, edgeQ = 3, 300, 500
		perm := rng.Perm(phases * (directQ + edgeQ))
		next := 0
		take := func(n int) []float64 {
			out := make([]float64, n)
			for i := range out {
				out[i] = float64(perm[next])
				next++
			}
			return out
		}

		for phase := 0; phase < phases; phase++ {
			// Direct wire ingest into the live aggregator and the twin.
			dc := dialPipe(t, cur.Load())
			n := 40 + rng.Intn(120)
			keys := make([]string, n)
			ukeys := make([]uint64, n)
			vals := make([]uint64, n)
			for i := range keys {
				keys[i] = fmt.Sprintf("key-%d", rng.Intn(8))
				ukeys[i] = rng.Uint64() % 8
				vals[i] = rng.Uint64() % 2000
			}
			qk := make([]string, directQ)
			for i := range qk {
				qk[i] = "api"
			}
			qv := take(directQ)
			for _, c := range []*client.Client{dc, expC} {
				if err := c.Ingest("ev", keys, vals); err != nil {
					t.Fatal(err)
				}
				if err := c.IngestU64("dev", ukeys, vals); err != nil {
					t.Fatal(err)
				}
				if err := c.IngestFloat("lat", qk, qv); err != nil {
					t.Fatal(err)
				}
				if err := c.Flush(); err != nil {
					t.Fatal(err)
				}
			}
			if err := dc.Close(); err != nil {
				t.Fatal(err)
			}

			// Edge ingest plus a cumulative ship of all three tables —
			// to the real aggregator through the Reliable, and to the
			// twin directly.
			eq := take(edgeQ)
			ek := make([]string, edgeQ)
			for i := range ek {
				ek[i] = "api"
			}
			latW.UpdateKeyedBatch(ek, eq)
			evW.UpdateKeyedBatch(keys, vals) // overlapping item sets are fine: sets union
			devW.UpdateKeyedBatch(ukeys, vals)
			for _, tbl := range trioTables {
				blob, err := edgeSrv.SnapshotTable(tbl)
				if err != nil {
					t.Fatal(err)
				}
				if err := rel.ShipSnapshot(tbl, "edge-1", blob); err != nil {
					t.Fatal(err)
				}
				if err := expC.PushSnapshotFrom(tbl, "edge-1", blob); err != nil {
					t.Fatal(err)
				}
			}
			if err := rel.Drain(time.Hour); err != nil {
				t.Fatalf("phase %d drain: %v", phase, err)
			}

			if phase < phases-1 {
				// Checkpoint, then KILL: server down, listener gone,
				// tables discarded. The next incarnation has only the
				// checkpoint directory.
				if _, err := inc.srv.WriteCheckpoints(dir); err != nil {
					t.Fatal(err)
				}
				cur.Store(nil)
				if err := inc.srv.Close(); err != nil {
					t.Fatal(err)
				}
				inc.ln.Close()
				inc.trio.close()
				time.Sleep(500 * time.Millisecond) // outage window
				inc = start()
				cur.Store(inc.ln)
			}
		}

		// Recovered state == failure-free state, for all three families.
		aggC := dialPipe(t, inc.ln)
		defer aggC.Close()
		defer inc.srv.Close()
		defer inc.trio.close()
		compareRollups(t, aggC, expC, uint64(phases*(directQ+edgeQ)))

		if st := rel.Stats(); st.Dials < 3 || st.Dropped != 0 || st.Delivered == 0 {
			t.Fatalf("stats = %+v, want >= 3 dials (one per incarnation), zero drops", st)
		}
	})
}

// TestSynctestFaultIdleTimeoutClosesIdleConn: with IdleTimeout set, a
// connection that stops sending frames is closed after the timeout
// while an active connection on the same server sails on.
func TestSynctestFaultIdleTimeoutClosesIdleConn(t *testing.T) {
	synctest.Run(func() {
		tab := table.NewTheta(table.ThetaConfig[string]{
			Table: table.Config[string]{Writers: 1, Shards: 8},
			K:     1024, MaxError: 1,
		})
		defer tab.Close()
		s := server.New(server.Config{IdleTimeout: time.Minute})
		if err := server.RegisterTheta(s, "ev", tab); err != nil {
			t.Fatal(err)
		}
		ln := newChanListener()
		go func() { _ = s.Serve(ln) }()
		defer s.Close()

		idleC := dialPipe(t, ln)
		activeC := dialPipe(t, ln)
		if _, err := idleC.Health(); err != nil {
			t.Fatal(err)
		}
		// Two minutes of virtual time; the active client keeps the
		// server busy every 30s, the idle one goes quiet.
		for i := 0; i < 4; i++ {
			time.Sleep(30 * time.Second)
			if _, err := activeC.Health(); err != nil {
				t.Fatalf("active connection died at t+%ds: %v", 30*(i+1), err)
			}
		}
		if _, err := idleC.Health(); err == nil {
			t.Fatal("idle connection survived 2 minutes with a 1-minute idle timeout")
		}
		h, err := activeC.Health()
		if err != nil {
			t.Fatal(err)
		}
		if h.Conns != 1 {
			t.Fatalf("server conns = %d, want 1 (idle one reaped)", h.Conns)
		}
	})
}

// TestSynctestFaultDialTimeoutBoundsHello: WithDialTimeout fails the
// HELLO exchange against a mute peer at exactly the configured bound
// instead of hanging forever.
func TestSynctestFaultDialTimeoutBoundsHello(t *testing.T) {
	synctest.Run(func() {
		cEnd, sEnd := net.Pipe()
		defer sEnd.Close() // a peer that accepts and then never answers
		start := time.Now()
		_, err := client.New(cEnd, client.WithDialTimeout(2*time.Second))
		if err == nil {
			t.Fatal("HELLO against a mute peer succeeded")
		}
		if elapsed := time.Since(start); elapsed < 2*time.Second || elapsed > 2*time.Second+50*time.Millisecond {
			t.Fatalf("dial failed after %v, want the 2s bound", elapsed)
		}
	})
}
