package hll

import (
	"math"
	"testing"
)

func TestEmptyEstimateIsZero(t *testing.T) {
	s := New(12)
	if est := s.Estimate(); est != 0 {
		t.Errorf("empty estimate = %v, want 0", est)
	}
	if !s.IsEmpty() {
		t.Error("fresh sketch not empty")
	}
}

func TestSmallCardinalityLinearCounting(t *testing.T) {
	// The small-range correction should make tiny counts near-exact.
	s := New(12)
	for i := uint64(0); i < 100; i++ {
		s.UpdateUint64(i)
	}
	if est := s.Estimate(); math.Abs(est-100) > 3 {
		t.Errorf("estimate = %v, want ~100", est)
	}
}

func TestAccuracyAcrossScales(t *testing.T) {
	p := uint8(12) // m=4096, RSE ~ 1.6%
	for _, n := range []int{1000, 10000, 100000, 1000000} {
		s := New(p)
		for i := 0; i < n; i++ {
			s.UpdateUint64(uint64(i))
		}
		re := math.Abs(s.Estimate()-float64(n)) / float64(n)
		if re > 5*s.RelativeStandardError() {
			t.Errorf("n=%d: relative error %.4f > 5 RSE (est=%v)", n, re, s.Estimate())
		}
	}
}

func TestDuplicatesDoNotInflate(t *testing.T) {
	s := New(12)
	for rep := 0; rep < 20; rep++ {
		for i := uint64(0); i < 500; i++ {
			s.UpdateUint64(i)
		}
	}
	if re := math.Abs(s.Estimate()-500) / 500; re > 0.1 {
		t.Errorf("estimate with heavy duplication = %v, want ~500", s.Estimate())
	}
}

func TestMergeDisjoint(t *testing.T) {
	a, b := New(12), New(12)
	for i := uint64(0); i < 50000; i++ {
		a.UpdateUint64(i)
		b.UpdateUint64(i + 50000)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	re := math.Abs(a.Estimate()-100000) / 100000
	if re > 5*a.RelativeStandardError() {
		t.Errorf("merged estimate %v for 100k uniques", a.Estimate())
	}
}

func TestMergeIdempotent(t *testing.T) {
	a, b := New(10), New(10)
	for i := uint64(0); i < 10000; i++ {
		a.UpdateUint64(i)
		b.UpdateUint64(i)
	}
	before := a.Estimate()
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Estimate() != before {
		t.Errorf("merging identical sketch changed estimate %v -> %v", before, a.Estimate())
	}
}

func TestMergeEqualsConcatenation(t *testing.T) {
	whole := New(12)
	a, b := New(12), New(12)
	for i := uint64(0); i < 60000; i++ {
		whole.UpdateUint64(i)
		if i%3 == 0 {
			a.UpdateUint64(i)
		} else {
			b.UpdateUint64(i)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	// Register-wise max is exactly order-insensitive: estimates match
	// exactly, not just approximately.
	if a.Estimate() != whole.Estimate() {
		t.Errorf("merge %v != concatenation %v", a.Estimate(), whole.Estimate())
	}
}

func TestMergeMismatch(t *testing.T) {
	if err := New(10).Merge(New(12)); err != ErrPrecisionMismatch {
		t.Errorf("precision mismatch err = %v", err)
	}
	if err := NewSeeded(10, 1).Merge(NewSeeded(10, 2)); err != ErrPrecisionMismatch {
		t.Errorf("seed mismatch err = %v", err)
	}
}

func TestReset(t *testing.T) {
	s := New(10)
	for i := uint64(0); i < 1000; i++ {
		s.UpdateUint64(i)
	}
	s.Reset()
	if !s.IsEmpty() || s.Estimate() != 0 {
		t.Error("reset did not clear sketch")
	}
}

func TestClone(t *testing.T) {
	s := New(10)
	for i := uint64(0); i < 5000; i++ {
		s.UpdateUint64(i)
	}
	c := s.Clone()
	if c.Estimate() != s.Estimate() {
		t.Fatal("clone estimate differs")
	}
	// Mutating the clone must not affect the original.
	for i := uint64(5000); i < 50000; i++ {
		c.UpdateUint64(i)
	}
	if re := math.Abs(s.Estimate()-5000) / 5000; re > 0.1 {
		t.Error("mutating clone changed original")
	}
}

func TestPrecisionBounds(t *testing.T) {
	for _, p := range []uint8{0, 3, 19} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", p)
				}
			}()
			New(p)
		}()
	}
}

func TestStringAndByteUpdatesAgree(t *testing.T) {
	a, b := New(10), New(10)
	for _, w := range []string{"x", "y", "zebra", "hyperloglog"} {
		a.UpdateString(w)
		b.Update([]byte(w))
	}
	if a.Estimate() != b.Estimate() {
		t.Error("string/byte update paths disagree")
	}
}

func TestRhoCapOnPathologicalHash(t *testing.T) {
	// A hash whose suffix is all zeros must not produce rho > 64-p+1.
	s := New(4)
	s.UpdateHash(0) // idx 0, rest 0
	if s.regs[0] != 64-4+1 {
		t.Errorf("register = %d, want %d (capped rho)", s.regs[0], 64-4+1)
	}
}

func BenchmarkUpdate(b *testing.B) {
	s := New(12)
	for i := 0; i < b.N; i++ {
		s.UpdateUint64(uint64(i))
	}
}

func BenchmarkEstimate(b *testing.B) {
	s := New(12)
	for i := uint64(0); i < 100000; i++ {
		s.UpdateUint64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Estimate()
	}
}
