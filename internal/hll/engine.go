package hll

import (
	"github.com/fcds/fcds/internal/core"
	"github.com/fcds/fcds/internal/hash"
)

// Engine binds a concurrent-HLL configuration into the generic
// core.Engine interface. Value type is the raw uint64 item, snapshot
// type the cardinality estimate, compact type the register-wise
// *Sketch copy.
type Engine struct {
	cfg ConcurrentConfig
}

var _ core.Engine[uint64, float64, *Sketch] = (*Engine)(nil)

// NewEngine returns an HLL engine for the given configuration (zero
// fields take the ConcurrentConfig defaults). The Pool field is
// ignored: the executor is chosen per sketch by NewSketch.
func NewEngine(cfg ConcurrentConfig) *Engine {
	cfg.Pool = nil
	return &Engine{cfg: cfg.withDefaults()}
}

// Kind implements core.CompactCodec.
func (e *Engine) Kind() byte { return core.KindHLL }

// Param implements core.CompactCodec: the precision p.
func (e *Engine) Param() uint32 { return uint32(e.cfg.Precision) }

// Seed returns the engine's shared hash seed.
func (e *Engine) Seed() uint64 { return e.cfg.Seed }

// HashString maps a string item to its 64-bit hash (zero-alloc); used
// by keyed string-batch ingestion to hash in the grouping pass.
func (e *Engine) HashString(s string) uint64 {
	h, _ := hash.Sum128String(s, e.cfg.Seed)
	return h
}

// NumWriters implements core.Engine.
func (e *Engine) NumWriters() int { return e.cfg.Writers }

// Relaxation implements core.Engine: r = 2·N·b per sketch.
func (e *Engine) Relaxation() int { return 2 * e.cfg.Writers * e.cfg.BufferSize }

// NewSketch implements core.Engine.
func (e *Engine) NewSketch(pool *core.PropagatorPool) core.EngineSketch[uint64, float64, *Sketch] {
	return e.NewSketchAffine(pool, 0)
}

// NewSketchAffine implements core.Engine: NewSketch pinned to the pool
// worker the affinity key maps to.
func (e *Engine) NewSketchAffine(pool *core.PropagatorPool, affinityKey uint64) core.EngineSketch[uint64, float64, *Sketch] {
	return &engineSketch{
		eng:  e,
		pool: pool,
		aff:  affinityKey,
		c:    e.newConcurrent(pool, affinityKey),
		ws:   make([]*ConcurrentWriter, e.cfg.Writers),
	}
}

func (e *Engine) newConcurrent(pool *core.PropagatorPool, affinityKey uint64) *Concurrent {
	cfg := e.cfg
	cfg.Pool = pool
	cfg.AffinityKey = affinityKey
	return NewConcurrent(cfg)
}

// NewSketchSeeded implements core.ScalableEngine: the new sketch's
// registers start from the compact (register-wise max; the promotion
// ladder preserves precision and seed, so the merge cannot fail — a
// foreign compact falls back to an empty sketch).
func (e *Engine) NewSketchSeeded(pool *core.PropagatorPool, affinityKey uint64, from *Sketch) core.EngineSketch[uint64, float64, *Sketch] {
	cfg := e.cfg
	cfg.Pool = pool
	cfg.AffinityKey = affinityKey
	c, err := NewConcurrentFrom(cfg, from)
	if err != nil {
		c = NewConcurrent(cfg)
	}
	return &engineSketch{
		eng:  e,
		pool: pool,
		aff:  affinityKey,
		c:    c,
		ws:   make([]*ConcurrentWriter, e.cfg.Writers),
	}
}

// maxScaledBuffer caps hot-key buffer growth (see theta's counterpart).
const maxScaledBuffer = 1 << 14

// ScaleUp implements core.ScalableEngine. HLL register merges require
// equal precision, so only the local buffer b doubles (halving handoff
// frequency for hot keys; r = 2·N·b doubles); precision is fixed. The
// eager phase is disabled — a promoted key is past the small-stream
// regime by construction.
func (e *Engine) ScaleUp() (core.Engine[uint64, float64, *Sketch], bool) {
	cfg := e.cfg
	if cfg.BufferSize >= maxScaledBuffer {
		return nil, false
	}
	cfg.BufferSize *= 2
	cfg.EagerLimit = -1
	return NewEngine(cfg), true
}

// NewAggregator implements core.Engine: one accumulating sketch with
// register-wise max merges.
func (e *Engine) NewAggregator() core.Aggregator[*Sketch] {
	return &mergeAggregator{s: NewSeeded(e.cfg.Precision, e.cfg.Seed)}
}

// QueryCompact implements core.Engine.
func (e *Engine) QueryCompact(c *Sketch) float64 { return c.Estimate() }

// MergeCompact implements core.CompactCodec.
func (e *Engine) MergeCompact(a, b *Sketch) (*Sketch, error) {
	out := a.Clone()
	if err := out.Merge(b); err != nil {
		return nil, err
	}
	return out, nil
}

// MarshalCompact implements core.CompactCodec.
func (e *Engine) MarshalCompact(c *Sketch) ([]byte, error) { return c.MarshalBinary() }

// UnmarshalCompact implements core.CompactCodec.
func (e *Engine) UnmarshalCompact(data []byte) (*Sketch, error) { return Unmarshal(data) }

// mergeAggregator adapts a sequential Sketch to core.Aggregator.
type mergeAggregator struct{ s *Sketch }

func (a *mergeAggregator) Add(c *Sketch) error { return a.s.Merge(c) }
func (a *mergeAggregator) Result() *Sketch     { return a.s }

// engineSketch adapts one Concurrent to core.EngineSketch; see the Θ
// counterpart for the writer-slot laziness contract.
type engineSketch struct {
	eng  *Engine
	pool *core.PropagatorPool
	aff  uint64
	c    *Concurrent
	ws   []*ConcurrentWriter
}

func (s *engineSketch) writer(i int) *ConcurrentWriter {
	if s.ws[i] == nil {
		s.ws[i] = s.c.Writer(i)
	}
	return s.ws[i]
}

func (s *engineSketch) Update(i int, v uint64)               { s.writer(i).UpdateUint64(v) }
func (s *engineSketch) UpdateBatch(i int, vals []uint64)     { s.writer(i).UpdateUint64Batch(vals) }
func (s *engineSketch) UpdateHashedBatch(i int, hs []uint64) { s.writer(i).UpdateHashBatch(hs) }
func (s *engineSketch) Flush(i int) {
	if s.ws[i] != nil {
		s.ws[i].Flush()
	}
}
func (s *engineSketch) Query() float64   { return s.c.Estimate() }
func (s *engineSketch) Compact() *Sketch { return s.c.Compact() }

// Close releases the sketch graph (see the Θ counterpart).
func (s *engineSketch) Close() {
	if s.c != nil {
		s.c.Close()
		s.c = nil
		s.ws = nil
	}
}

// Reset implements core.EngineSketch; caller holds Close-level
// exclusivity.
func (s *engineSketch) Reset() {
	s.c.Close()
	s.c = s.eng.newConcurrent(s.pool, s.aff)
	clear(s.ws)
}
