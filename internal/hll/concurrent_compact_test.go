package hll

import "testing"

// TestConcurrentCompact checks the register-wise copy matches the live
// estimate after a flush and survives a serde round trip.
func TestConcurrentCompact(t *testing.T) {
	c := NewConcurrent(ConcurrentConfig{Precision: 10, Writers: 1})
	defer c.Close()
	w := c.Writer(0)
	const n = 5000
	for v := uint64(0); v < n; v++ {
		w.UpdateUint64(v)
	}
	w.Flush()
	cp := c.Compact()
	if got, want := cp.Estimate(), c.Estimate(); got != want {
		t.Errorf("compact estimate = %v, live estimate = %v", got, want)
	}
	data, err := cp.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Estimate() != cp.Estimate() {
		t.Errorf("round-trip estimate = %v, want %v", back.Estimate(), cp.Estimate())
	}
}

// TestConcurrentCompactDuringIngest races Compact against ingestion;
// the race detector is the assertion.
func TestConcurrentCompactDuringIngest(t *testing.T) {
	c := NewConcurrent(ConcurrentConfig{Precision: 8, Writers: 1, BufferSize: 16})
	defer c.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		w := c.Writer(0)
		for v := uint64(0); v < 20000; v++ {
			w.UpdateUint64(v)
		}
		w.Flush()
	}()
	for i := 0; i < 100; i++ {
		if cp := c.Compact(); cp.Estimate() < 0 {
			t.Fatal("negative estimate")
		}
	}
	<-done
}
