package hll

import (
	"math"
	"sync"
	"sync/atomic"

	"github.com/fcds/fcds/internal/core"
	"github.com/fcds/fcds/internal/hash"
)

// This file instantiates the generic framework with HLL — the "other
// sketches" direction the paper's conclusion points at. Local sketches
// are same-precision HLLs, so propagation is a register-wise max; the
// snapshot is the estimate behind an atomic word, as for Θ.

// localHLL adapts *Sketch to core.Local[uint64] (updates arrive
// pre-hashed).
type localHLL struct{ s *Sketch }

// Update implements core.Local.
func (l localHLL) Update(h uint64) { l.s.UpdateHash(h) }

// UpdateSlice implements core.BatchLocal: one interface dispatch per
// run of hashes instead of one per hash.
func (l localHLL) UpdateSlice(hs []uint64) {
	for _, h := range hs {
		l.s.UpdateHash(h)
	}
}

// Reset implements core.Local.
func (l localHLL) Reset() { l.s.Reset() }

// GlobalSketch is the composable global HLL sketch.
type GlobalSketch struct {
	h *Sketch
	// mu serialises structural access to h (merge/eager paths vs
	// Compact copies); the wait-free estimate read never touches it.
	mu  sync.Mutex
	est atomic.Uint64 // Float64bits of the estimate
}

var _ core.Global[uint64, float64] = (*GlobalSketch)(nil)

// NewGlobal returns an empty composable global HLL with precision p.
func NewGlobal(p uint8, seed uint64) *GlobalSketch {
	return &GlobalSketch{h: NewSeeded(p, seed)}
}

// Merge implements core.Global (register-wise max).
func (g *GlobalSketch) Merge(l core.Local[uint64]) {
	g.mu.Lock()
	// Same precision and seed by construction.
	if err := g.h.Merge(l.(localHLL).s); err != nil {
		panic("hll: mismatched local sketch: " + err.Error())
	}
	g.publish()
	g.mu.Unlock()
}

// UpdateDirect implements core.Global (eager phase).
func (g *GlobalSketch) UpdateDirect(h uint64) {
	g.mu.Lock()
	g.h.UpdateHash(h)
	g.publish()
	g.mu.Unlock()
}

// Compact returns a register-wise copy of the global sketch,
// serialised against concurrent merges: serializable with
// MarshalBinary and mergeable into other same-precision HLLs.
func (g *GlobalSketch) Compact() *Sketch {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.h.Clone()
}

// Absorb folds a sequential sketch into the global (register-wise max;
// precision and seed must match). Intended for sketch construction,
// before any writer or propagator runs.
func (g *GlobalSketch) Absorb(from *Sketch) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if err := g.h.Merge(from); err != nil {
		return err
	}
	g.publish()
	return nil
}

// Snapshot implements core.Global.
func (g *GlobalSketch) Snapshot() float64 { return math.Float64frombits(g.est.Load()) }

// CalcHint implements core.Global; HLL derives no useful hint.
func (g *GlobalSketch) CalcHint() uint64 { return 1 }

// ShouldAdd implements core.Global; HLL cannot pre-filter (any hash
// may raise a register).
func (g *GlobalSketch) ShouldAdd(uint64, uint64) bool { return true }

func (g *GlobalSketch) publish() { g.est.Store(math.Float64bits(g.h.Estimate())) }

// ConcurrentConfig configures a concurrent HLL sketch. Zero fields take
// defaults: Precision=12, Writers=1, BufferSize=1024.
type ConcurrentConfig struct {
	// Precision is p; the global and local sketches use 2^p registers.
	Precision uint8
	// Writers is N, the number of writer handles.
	Writers int
	// BufferSize is b, updates buffered per writer between merges; the
	// query relaxation is 2·N·b.
	BufferSize int
	// EagerLimit, when > 0, propagates the first EagerLimit updates
	// eagerly; < 0 disables, 0 uses 2^Precision.
	EagerLimit int
	// Seed is the hash seed.
	Seed uint64
	// Pool, when non-nil, attaches the sketch to a shared propagation
	// executor instead of a dedicated propagator goroutine.
	Pool *core.PropagatorPool
	// AffinityKey pins the sketch to one pool worker (equal nonzero
	// keys share a worker); 0 lets the pool assign round-robin.
	AffinityKey uint64
}

func (c ConcurrentConfig) withDefaults() ConcurrentConfig {
	if c.Precision == 0 {
		c.Precision = 12
	}
	com := core.CommonConfig{Writers: c.Writers, EagerLimit: c.EagerLimit, Seed: c.Seed}.
		WithDefaults(1<<c.Precision, hash.DefaultSeed)
	c.Writers, c.EagerLimit, c.Seed = com.Writers, com.EagerLimit, com.Seed
	if c.BufferSize == 0 {
		c.BufferSize = 1024
	}
	return c
}

// Concurrent is the concurrent HLL sketch.
type Concurrent struct {
	sk     *core.Sketch[uint64, float64]
	global *GlobalSketch
	cfg    ConcurrentConfig
}

// NewConcurrent builds a concurrent HLL sketch; Close when done.
func NewConcurrent(cfg ConcurrentConfig) *Concurrent {
	c, _ := NewConcurrentFrom(cfg, nil)
	return c
}

// NewConcurrentFrom builds a concurrent HLL sketch whose global
// registers are preloaded from a sequential sketch (nil means empty) —
// the hot-key promotion rebuild path. Precision and seed must match.
func NewConcurrentFrom(cfg ConcurrentConfig, from *Sketch) (*Concurrent, error) {
	cfg = cfg.withDefaults()
	global := NewGlobal(cfg.Precision, cfg.Seed)
	if from != nil {
		if err := global.Absorb(from); err != nil {
			return nil, err
		}
	}
	coreCfg := core.Config{
		Writers:         cfg.Writers,
		BufferSize:      cfg.BufferSize,
		EagerLimit:      cfg.EagerLimit,
		DoubleBuffering: true,
		Pool:            cfg.Pool,
		AffinityKey:     cfg.AffinityKey,
	}
	newLocal := func() core.Local[uint64] {
		return localHLL{s: NewSeeded(cfg.Precision, cfg.Seed)}
	}
	return &Concurrent{
		sk:     core.New[uint64, float64](global, newLocal, coreCfg),
		global: global,
		cfg:    cfg,
	}, nil
}

// Writer returns the i-th writer handle (single-goroutine use).
func (c *Concurrent) Writer(i int) *ConcurrentWriter {
	return &ConcurrentWriter{w: c.sk.Writer(i), seed: c.cfg.Seed}
}

// Estimate returns the current estimate (wait-free; may miss up to
// Relaxation() recent updates).
func (c *Concurrent) Estimate() float64 { return c.sk.Query() }

// Relaxation returns the bound r = 2·N·b.
func (c *Concurrent) Relaxation() int { return c.sk.Relaxation() }

// Compact returns a register-wise copy of the sketch: serializable
// with MarshalBinary and mergeable into other same-precision HLLs.
// Not wait-free (it briefly synchronises with the propagator); may
// miss up to Relaxation() recent updates unless writers Flush first.
func (c *Concurrent) Compact() *Sketch { return c.global.Compact() }

// Propagations returns the number of local merges completed.
func (c *Concurrent) Propagations() int64 { return c.sk.Propagations() }

// Close stops the propagator. Flush writers first to drain buffers.
func (c *Concurrent) Close() { c.sk.Close() }

// ConcurrentWriter is a single-goroutine update handle.
type ConcurrentWriter struct {
	w    *core.Writer[uint64, float64]
	seed uint64
	// scratch holds a batch's hashes between the hashing pass and the
	// framework handoff; reused so steady-state batches do not allocate.
	scratch []uint64
}

// Update processes a byte-slice item.
func (w *ConcurrentWriter) Update(data []byte) {
	h, _ := hash.Sum128(data, w.seed)
	w.w.Update(h)
}

// UpdateUint64 processes a uint64 item.
func (w *ConcurrentWriter) UpdateUint64(v uint64) {
	h, _ := hash.SumUint64(v, w.seed)
	w.w.Update(h)
}

// UpdateString processes a string item.
func (w *ConcurrentWriter) UpdateString(s string) {
	h, _ := hash.SumString(s, w.seed)
	w.w.Update(h)
}

// UpdateUint64Batch processes a slice of uint64 items: one hashing
// pass, then a bulk handoff to the framework. HLL cannot pre-filter
// (any hash may raise a register), so every hash is kept.
func (w *ConcurrentWriter) UpdateUint64Batch(vs []uint64) {
	w.scratch = hash.AppendSumUint64(w.scratch[:0], vs, w.seed)
	w.w.UpdateBatchPrefiltered(w.scratch)
}

// UpdateHash processes a pre-hashed item.
func (w *ConcurrentWriter) UpdateHash(h uint64) { w.w.Update(h) }

// UpdateHashBatch processes a slice of pre-hashed items in one bulk
// handoff — the keyed string-ingestion path hashes whole batches in its
// grouping pass and feeds the hashes through here.
func (w *ConcurrentWriter) UpdateHashBatch(hs []uint64) { w.w.UpdateBatchPrefiltered(hs) }

// UpdateStringBatch processes a slice of string items in one hashing
// pass; steady state is allocation-free.
func (w *ConcurrentWriter) UpdateStringBatch(ss []string) {
	scratch := w.scratch[:0]
	for _, s := range ss {
		h, _ := hash.Sum128String(s, w.seed)
		scratch = append(scratch, h)
	}
	w.scratch = scratch
	w.w.UpdateBatchPrefiltered(scratch)
}

// UpdateBatch processes a slice of byte-slice items in one hashing
// pass.
func (w *ConcurrentWriter) UpdateBatch(items [][]byte) {
	scratch := w.scratch[:0]
	for _, it := range items {
		h, _ := hash.Sum128(it, w.seed)
		scratch = append(scratch, h)
	}
	w.scratch = scratch
	w.w.UpdateBatchPrefiltered(scratch)
}

// Flush propagates buffered updates and waits for completion.
func (w *ConcurrentWriter) Flush() { w.w.Flush() }
