package hll

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestHLLSerdeRoundTrip(t *testing.T) {
	s := New(12)
	for i := uint64(0); i < 100000; i++ {
		s.UpdateUint64(i)
	}
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Estimate() != s.Estimate() {
		t.Errorf("estimate changed: %v -> %v", s.Estimate(), got.Estimate())
	}
	if got.Precision() != 12 || got.Seed() != s.Seed() {
		t.Error("metadata changed")
	}
	// The restored sketch must keep working and stay mergeable.
	if err := got.Merge(s); err != nil {
		t.Fatal(err)
	}
	if got.Estimate() != s.Estimate() {
		t.Error("self-merge after restore changed estimate")
	}
}

func TestHLLSerdeRoundTripEmpty(t *testing.T) {
	data, _ := New(8).MarshalBinary()
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsEmpty() || got.Estimate() != 0 {
		t.Error("empty round trip failed")
	}
}

func TestHLLSerdeRejectsCorruption(t *testing.T) {
	s := New(10)
	for i := uint64(0); i < 1000; i++ {
		s.UpdateUint64(i)
	}
	base, _ := s.MarshalBinary()
	tests := []struct {
		name   string
		mutate func([]byte) []byte
		want   error
	}{
		{"short", func(b []byte) []byte { return b[:8] }, ErrCorrupt},
		{"magic", func(b []byte) []byte { b[0] = 'x'; return b }, ErrBadMagic},
		{"version", func(b []byte) []byte { b[4] = 7; return b }, ErrBadVersion},
		{"precision", func(b []byte) []byte { b[5] = 30; return b }, ErrCorrupt},
		{"size", func(b []byte) []byte { return b[:len(b)-1] }, ErrCorrupt},
		{"register range", func(b []byte) []byte { b[hheaderSize] = 200; return b }, ErrBadReg},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.mutate(append([]byte(nil), base...))
			if _, err := Unmarshal(data); !errors.Is(err, tc.want) {
				t.Errorf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestHLLSerdeFuzzNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = Unmarshal(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
