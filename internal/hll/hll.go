// Package hll implements a HyperLogLog cardinality sketch (Flajolet et
// al., with the small-range bias correction of Heule et al.'s HLL++).
//
// The paper's generic framework (§5) is sketch-agnostic; HLL is the
// third instantiation we provide, demonstrating the "future work may
// leverage our framework for other sketches" direction (§8) — the
// artifact appendix also lists HLL. HLL merges are register-wise max,
// which makes the local/global propagation of the framework especially
// cheap: a local HLL of the same precision merges in O(m).
package hll

import (
	"errors"
	"math"
	"math/bits"

	"github.com/fcds/fcds/internal/hash"
)

// Sketch is a dense HyperLogLog sketch. Not safe for concurrent use;
// use the core framework for concurrency.
type Sketch struct {
	p    uint8 // precision: 2^p registers
	seed uint64
	regs []uint8
	// sum is the running Σ 2^-reg and zeros the count of zero
	// registers; maintaining them incrementally makes Estimate O(1),
	// which the concurrent global sketch needs to republish its
	// snapshot after every merge.
	sum   float64
	zeros int
}

// ErrPrecisionMismatch is returned when merging sketches with different
// precisions or seeds.
var ErrPrecisionMismatch = errors.New("hll: precision or seed mismatch")

// New returns an empty HLL sketch with precision p in [4, 18]
// (m = 2^p registers; RSE ≈ 1.04/sqrt(m)).
func New(p uint8) *Sketch { return NewSeeded(p, hash.DefaultSeed) }

// NewSeeded returns an empty sketch with an explicit hash seed.
func NewSeeded(p uint8, seed uint64) *Sketch {
	if p < 4 || p > 18 {
		panic("hll: precision must be in [4, 18]")
	}
	m := 1 << p
	return &Sketch{p: p, seed: seed, regs: make([]uint8, m), sum: float64(m), zeros: m}
}

// Precision returns the precision parameter p.
func (s *Sketch) Precision() uint8 { return s.p }

// Seed returns the hash seed.
func (s *Sketch) Seed() uint64 { return s.seed }

// Update processes one stream item given as raw bytes.
func (s *Sketch) Update(data []byte) {
	h, _ := hash.Sum128(data, s.seed)
	s.UpdateHash(h)
}

// UpdateUint64 processes one uint64 stream item.
func (s *Sketch) UpdateUint64(v uint64) {
	h, _ := hash.SumUint64(v, s.seed)
	s.UpdateHash(h)
}

// UpdateString processes one string stream item.
func (s *Sketch) UpdateString(v string) {
	h, _ := hash.SumString(v, s.seed)
	s.UpdateHash(h)
}

// UpdateHash processes a pre-hashed item (full 64-bit hash, not Θ
// space). The top p bits select a register; the rank of the remaining
// bits updates it.
func (s *Sketch) UpdateHash(h uint64) {
	idx := h >> (64 - s.p)
	rest := h<<s.p | 1<<(uint(s.p)-1) // guard bit bounds rho at 64-p+1
	rho := uint8(bits.LeadingZeros64(rest)) + 1
	if old := s.regs[idx]; rho > old {
		s.regs[idx] = rho
		s.sum += math.Exp2(-float64(rho)) - math.Exp2(-float64(old))
		if old == 0 {
			s.zeros--
		}
	}
}

// Estimate returns the estimated number of distinct items. O(1): the
// register sum is maintained incrementally.
func (s *Sketch) Estimate() float64 {
	m := float64(len(s.regs))
	est := alpha(len(s.regs)) * m * m / s.sum
	// Small-range correction: linear counting while registers are
	// sparse (empirically better than raw HLL below 2.5m).
	if est <= 2.5*m && s.zeros > 0 {
		return m * math.Log(m/float64(s.zeros))
	}
	return est
}

// recalc recomputes the incremental estimate state from the registers.
func (s *Sketch) recalc() {
	s.sum = 0
	s.zeros = 0
	for _, r := range s.regs {
		s.sum += math.Exp2(-float64(r))
		if r == 0 {
			s.zeros++
		}
	}
}

// alpha is the HLL bias-correction constant for m registers.
func alpha(m int) float64 {
	switch m {
	case 16:
		return 0.673
	case 32:
		return 0.697
	case 64:
		return 0.709
	}
	return 0.7213 / (1 + 1.079/float64(m))
}

// Merge folds other into s (register-wise max). Precisions and seeds
// must match.
func (s *Sketch) Merge(other *Sketch) error {
	if other.p != s.p || other.seed != s.seed {
		return ErrPrecisionMismatch
	}
	for i, r := range other.regs {
		if r > s.regs[i] {
			s.regs[i] = r
		}
	}
	s.recalc()
	return nil
}

// Reset restores the sketch to empty, retaining its register array.
func (s *Sketch) Reset() {
	clear(s.regs)
	m := len(s.regs)
	s.sum = float64(m)
	s.zeros = m
}

// IsEmpty reports whether all registers are zero.
func (s *Sketch) IsEmpty() bool {
	for _, r := range s.regs {
		if r != 0 {
			return false
		}
	}
	return true
}

// RelativeStandardError returns the a-priori RSE 1.04/sqrt(m).
func (s *Sketch) RelativeStandardError() float64 {
	return 1.04 / math.Sqrt(float64(len(s.regs)))
}

// Clone returns a deep copy.
func (s *Sketch) Clone() *Sketch {
	cp := &Sketch{p: s.p, seed: s.seed, regs: make([]uint8, len(s.regs)), sum: s.sum, zeros: s.zeros}
	copy(cp.regs, s.regs)
	return cp
}
