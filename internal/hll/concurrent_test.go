package hll

import (
	"math"
	"sync"
	"testing"
)

func TestConcurrentHLLSingleWriter(t *testing.T) {
	c := NewConcurrent(ConcurrentConfig{Precision: 12, Writers: 1})
	defer c.Close()
	w := c.Writer(0)
	const n = 100000
	for i := uint64(0); i < n; i++ {
		w.UpdateUint64(i)
	}
	w.Flush()
	if re := math.Abs(c.Estimate()-n) / n; re > 0.1 {
		t.Errorf("relative error %v (est=%v)", re, c.Estimate())
	}
}

func TestConcurrentHLLMultiWriter(t *testing.T) {
	const writers, per = 4, 50000
	c := NewConcurrent(ConcurrentConfig{Precision: 12, Writers: writers})
	defer c.Close()
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := c.Writer(i)
			for j := 0; j < per; j++ {
				w.UpdateUint64(uint64(i*per + j))
			}
			w.Flush()
		}(i)
	}
	wg.Wait()
	n := float64(writers * per)
	if re := math.Abs(c.Estimate()-n) / n; re > 0.1 {
		t.Errorf("relative error %v (est=%v)", re, c.Estimate())
	}
}

func TestConcurrentHLLEagerSmallStream(t *testing.T) {
	c := NewConcurrent(ConcurrentConfig{Precision: 12, Writers: 1, EagerLimit: 500})
	defer c.Close()
	w := c.Writer(0)
	for i := uint64(0); i < 400; i++ {
		w.UpdateUint64(i)
	}
	// Eager phase: estimate reflects all updates immediately; linear
	// counting makes small counts near-exact.
	if est := c.Estimate(); math.Abs(est-400) > 20 {
		t.Errorf("eager estimate = %v, want ~400", est)
	}
}

func TestConcurrentHLLOverlappingWriters(t *testing.T) {
	// All writers ingest the same values: the estimate must reflect the
	// union (register max), not the sum.
	const writers = 4
	c := NewConcurrent(ConcurrentConfig{Precision: 12, Writers: writers})
	defer c.Close()
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := c.Writer(i)
			for j := uint64(0); j < 30000; j++ {
				w.UpdateUint64(j) // identical streams
			}
			w.Flush()
		}(i)
	}
	wg.Wait()
	if re := math.Abs(c.Estimate()-30000) / 30000; re > 0.1 {
		t.Errorf("estimate %v for 30000 uniques ingested 4x", c.Estimate())
	}
}

func BenchmarkConcurrentHLLUpdate(b *testing.B) {
	c := NewConcurrent(ConcurrentConfig{Precision: 12, Writers: 1, EagerLimit: -1})
	defer c.Close()
	w := c.Writer(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.UpdateUint64(uint64(i))
	}
}
