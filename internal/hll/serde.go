package hll

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Binary format (little endian), version 1:
//
//	offset  size  field
//	0       4     magic "FCHL"
//	4       1     format version (1)
//	5       1     precision p
//	6       2     reserved (0)
//	8       8     hash seed
//	16      2^p   registers (one byte each)
//
// Registers are stored raw: at typical precisions the array is 4KB
// and compresses well at rest; a packed 6-bit encoding is not worth
// the decode cost here.
const (
	hserdeMagic   = "FCHL"
	hserdeVersion = 1
	hheaderSize   = 16
)

// Serialization errors.
var (
	ErrBadMagic   = errors.New("hll: bad magic bytes")
	ErrBadVersion = errors.New("hll: unsupported format version")
	ErrCorrupt    = errors.New("hll: corrupt sketch bytes")
	ErrBadReg     = errors.New("hll: register value exceeds maximum rank")
)

// MarshalBinary serializes the sketch.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	buf := make([]byte, hheaderSize+len(s.regs))
	copy(buf[0:4], hserdeMagic)
	buf[4] = hserdeVersion
	buf[5] = s.p
	binary.LittleEndian.PutUint64(buf[8:16], s.seed)
	copy(buf[hheaderSize:], s.regs)
	return buf, nil
}

// Unmarshal parses a sketch serialized by MarshalBinary, validating
// the precision, payload size and register ranges.
func Unmarshal(data []byte) (*Sketch, error) {
	if len(data) < hheaderSize {
		return nil, fmt.Errorf("%w: %d bytes < header", ErrCorrupt, len(data))
	}
	if string(data[0:4]) != hserdeMagic {
		return nil, ErrBadMagic
	}
	if data[4] != hserdeVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, data[4])
	}
	p := data[5]
	if p < 4 || p > 18 {
		return nil, fmt.Errorf("%w: precision %d", ErrCorrupt, p)
	}
	m := 1 << p
	if len(data) != hheaderSize+m {
		return nil, fmt.Errorf("%w: payload size %d != %d", ErrCorrupt, len(data)-hheaderSize, m)
	}
	seed := binary.LittleEndian.Uint64(data[8:16])
	s := NewSeeded(p, seed)
	maxRank := uint8(64 - p + 1)
	for i, r := range data[hheaderSize:] {
		if r > maxRank {
			return nil, fmt.Errorf("%w: register %d = %d > %d", ErrBadReg, i, r, maxRank)
		}
		s.regs[i] = r
	}
	s.recalc()
	return s, nil
}
