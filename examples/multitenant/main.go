// Multitenant tracks per-tenant unique users with a keyed Θ table:
// ingest goroutines push zipfian-keyed batches (a few hot tenants, a
// long tail), a dashboard reads per-tenant estimates wait-free, idle
// tenants are evicted as serialized snapshots, and two simulated nodes
// merge their table snapshots — the distributed-aggregation path.
//
// However many tenants appear, propagation runs on one fixed pool:
// the goroutine count is O(GOMAXPROCS), not O(tenants).
//
// Run: go run ./examples/multitenant
package main

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	fcds "github.com/fcds/fcds"
	"github.com/fcds/fcds/internal/stream"
)

const (
	ingesters = 3
	tenants   = 5000
	batches   = 400
	batchSize = 512
)

func tenantName(id uint64) string { return fmt.Sprintf("tenant-%04d", id) }

func main() {
	var spilled sync.Map // tenant -> serialized Θ snapshot
	tab := fcds.NewThetaTable(fcds.ThetaTableConfig{
		Table: fcds.TableConfig{
			Writers: ingesters,
			MaxKeys: 4000, // cap forces the cold tail to spill
			OnEvict: func(k string, snap []byte) { spilled.Store(k, snap) },
		},
		K: 1024,
	})
	defer tab.Close()

	before := runtime.NumGoroutine()
	var wg sync.WaitGroup
	for g := 0; g < ingesters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			w := tab.Writer(g)
			keys := make([]string, batchSize)
			users := make([]uint64, batchSize)
			tenantDraw := stream.NewZipf(tenants, 1.2, uint64(g)+1)
			userDraw := stream.NewScrambled(uint64(g) << 40)
			for b := 0; b < batches; b++ {
				for i := range keys {
					keys[i] = tenantName(tenantDraw.Next())
					users[i] = userDraw.Next()
				}
				w.UpdateKeyedBatch(keys, users)
			}
		}(g)
	}
	wg.Wait()
	tab.Drain()

	fmt.Printf("ingested %d keyed updates across up to %d tenants\n",
		ingesters*batches*batchSize, tenants)
	fmt.Printf("live tenants: %d, evicted (spilled): %d, goroutines: %d before / %d after\n",
		tab.Keys(), tab.Evictions(), before, runtime.NumGoroutine())

	// Wait-free per-tenant reads: top hot tenants by estimate.
	type row struct {
		name string
		est  float64
	}
	var rows []row
	for id := uint64(0); id < 10; id++ {
		if est, ok := tab.Estimate(tenantName(id)); ok {
			rows = append(rows, row{tenantName(id), est})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].est > rows[j].est })
	fmt.Println("\nhot tenants (unique users, wait-free estimates):")
	for _, r := range rows[:min(5, len(rows))] {
		fmt.Printf("  %s  ~%.0f\n", r.name, r.est)
	}

	// All-tenant rollup: duplicates across tenants collapse.
	fmt.Printf("\nall-tenant rollup: ~%.0f unique users\n", tab.Rollup().Estimate())

	// A spilled tenant's snapshot is still queryable offline.
	spilled.Range(func(k, v any) bool {
		c, err := fcds.UnmarshalThetaCompact(v.([]byte))
		if err == nil {
			fmt.Printf("spilled %s: ~%.0f unique users (from %d-byte snapshot)\n",
				k, c.Estimate(), len(v.([]byte)))
		}
		return false // just one example
	})

	// Distributed aggregation: a second "node" sees overlapping users
	// for tenant 0; snapshots merge per key.
	node2 := fcds.NewThetaTable(fcds.ThetaTableConfig{
		Table: fcds.TableConfig{Writers: 1},
		K:     1024,
	})
	defer node2.Close()
	w := node2.Writer(0)
	users := make([]uint64, 2000)
	keys := make([]string, 2000)
	draw := stream.NewScrambled(0) // overlaps node 1's g=0 ingester
	for i := range users {
		keys[i] = tenantName(0)
		users[i] = draw.Next()
	}
	w.UpdateKeyedBatch(keys, users)
	node2.Drain()

	b1, err1 := tab.SnapshotBinary()
	b2, err2 := node2.SnapshotBinary()
	if err1 != nil || err2 != nil {
		panic(fmt.Sprint(err1, err2))
	}
	s1, _ := fcds.UnmarshalThetaTableSnapshot(b1)
	s2, _ := fcds.UnmarshalThetaTableSnapshot(b2)
	e1, _ := tab.Estimate(tenantName(0))
	e2, _ := node2.Estimate(tenantName(0))
	if err := s1.Merge(s2); err != nil {
		panic(err)
	}
	if c, ok := s1.Get(tenantName(0)); ok {
		fmt.Printf("\ndistributed merge for %s: node1 ~%.0f + node2 ~%.0f -> merged ~%.0f (overlap collapsed)\n",
			tenantName(0), e1, e2, c.Estimate())
	}
	fmt.Printf("merged snapshot: %d tenants, %d bytes\n", s1.Len(), len(b1)+len(b2))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
