// Latencymon tracks request-latency percentiles in real time with the
// concurrent Quantiles sketch: handler goroutines record latencies
// while an SLO monitor reads p50/p95/p99 snapshots wait-free — the
// "real-time analytics" use case of the paper's introduction.
//
// The simulated latency distribution is log-normal-ish with an
// injected tail regression halfway through, which the p99 line
// catches while p50 barely moves.
//
// Run: go run ./examples/latencymon
package main

import (
	"fmt"
	"math"
	"sync"
	"time"

	fcds "github.com/fcds/fcds"
)

func main() {
	const handlers = 3
	c := fcds.NewConcurrentQuantiles(fcds.ConcurrentQuantilesConfig{
		K: 128, Writers: handlers,
	})
	defer c.Close()

	stop := make(chan struct{})
	slow := make(chan struct{}) // closed when the tail regression starts
	var wg sync.WaitGroup
	for h := 0; h < handlers; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			w := c.Writer(h)
			// Deterministic pseudo-random latencies (ms).
			state := uint64(h + 1)
			degraded := false
			mySlow := slow // local copy: each handler observes the close once
			for {
				select {
				case <-stop:
					w.Flush()
					return
				case <-mySlow:
					degraded = true
					mySlow = nil // stop selecting on the closed channel
				default:
				}
				state = state*6364136223846793005 + 1442695040888963407
				u := float64(state>>11) / (1 << 53)
				lat := 5 * math.Exp(1.2*u) // ~5..17ms body
				if degraded && state%100 < 5 {
					lat += 200 // 5% of requests hit a slow dependency
				}
				w.Update(lat)
			}
		}(h)
	}

	start := time.Now()
	injected := false
	ticker := time.NewTicker(100 * time.Millisecond)
	defer ticker.Stop()
	for time.Since(start) < 2*time.Second {
		<-ticker.C
		if !injected && time.Since(start) > time.Second {
			close(slow)
			injected = true
			fmt.Println("--- tail regression injected ---")
		}
		snap := c.Snapshot() // immutable, wait-free
		if snap.IsEmpty() {
			continue
		}
		fmt.Printf("n=%-9d p50=%6.1fms  p95=%6.1fms  p99=%6.1fms  max=%6.1fms\n",
			snap.N(), snap.Quantile(0.5), snap.Quantile(0.95),
			snap.Quantile(0.99), snap.Max())
	}
	close(stop)
	wg.Wait()
	final := c.Snapshot()
	fmt.Printf("final: n=%d p99=%.1fms (ε≈%.2f%% rank error)\n",
		final.N(), final.Quantile(0.99), 100*fcds.QuantilesRankError(128))
}
