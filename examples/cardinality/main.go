// Cardinality compares the library's three distinct-count facilities
// on overlapping event streams and demonstrates Θ set operations —
// the queries a real analytics pipeline asks of its sketches:
//
//   - How many distinct users visited page A? page B? either? both?
//   - Θ sketch vs HLL: same question, different space/accuracy/set-op
//     trade-offs.
//
// Run: go run ./examples/cardinality
package main

import (
	"fmt"

	fcds "github.com/fcds/fcds"
)

func main() {
	const (
		usersA      = 600_000 // visitors of page A: ids 0..600k
		usersB      = 400_000 // visitors of page B: ids 450k..850k
		trueOverlap = 150_000 // 450k..600k
		trueUnion   = 850_000
	)

	// Θ sketches: support set operations.
	a := fcds.NewThetaQuickSelect(4096)
	b := fcds.NewThetaQuickSelect(4096)
	// HLLs for comparison: 2^12 registers = 4KB.
	ha := fcds.NewHLLSketch(12)
	hb := fcds.NewHLLSketch(12)

	for u := uint64(0); u < usersA; u++ {
		a.UpdateUint64(u)
		ha.UpdateUint64(u)
	}
	for u := uint64(450_000); u < 450_000+usersB; u++ {
		b.UpdateUint64(u)
		hb.UpdateUint64(u)
	}

	fmt.Printf("page A:  Θ=%9.0f  HLL=%9.0f  (true %d)\n", a.Estimate(), ha.Estimate(), usersA)
	fmt.Printf("page B:  Θ=%9.0f  HLL=%9.0f  (true %d)\n", b.Estimate(), hb.Estimate(), usersB)

	// Union: both sketches can do it; HLL by register max, Θ via Union.
	u := fcds.NewThetaUnion(4096)
	must(u.Add(a))
	must(u.Add(b))
	hu := fcds.NewHLLSketch(12)
	must(hu.Merge(ha))
	must(hu.Merge(hb))
	fmt.Printf("A ∪ B:   Θ=%9.0f  HLL=%9.0f  (true %d)\n",
		u.Result().Estimate(), hu.Estimate(), trueUnion)

	// Intersection and difference: Θ-only tricks.
	x := fcds.NewThetaIntersection()
	must(x.Add(a))
	must(x.Add(b))
	diff, err := fcds.ThetaAnotB(a, b)
	must(err)
	fmt.Printf("A ∩ B:   Θ=%9.0f             (true %d)\n", x.Result().Estimate(), trueOverlap)
	fmt.Printf("A \\ B:   Θ=%9.0f             (true %d)\n", diff.Estimate(), usersA-trueOverlap)

	j, err := fcds.ThetaJaccard(a, b, 4096)
	must(err)
	fmt.Printf("Jaccard: %.3f                      (true %.3f)\n",
		j, float64(trueOverlap)/float64(trueUnion))

	// Serialization round trip, as a pipeline hand-off would do.
	blob, err := u.Result().MarshalBinary()
	must(err)
	back, err := fcds.UnmarshalThetaCompact(blob)
	must(err)
	fmt.Printf("serialized union: %d bytes, estimate %.0f [%.0f, %.0f] @95%%\n",
		len(blob), back.Estimate(), back.LowerBound(2), back.UpperBound(2))
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
