// Quickstart: count distinct items concurrently with the Θ sketch.
//
// Four goroutines ingest overlapping ranges of user IDs while the main
// goroutine watches the estimate converge in real time — no locks, no
// stop-the-world queries.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"sync"
	"time"

	fcds "github.com/fcds/fcds"
)

func main() {
	const writers = 4
	c := fcds.NewConcurrentTheta(fcds.ConcurrentThetaConfig{
		K:        4096, // sketch size: RSE ≈ 1/sqrt(k-2) ≈ 1.6%
		Writers:  writers,
		MaxError: 0.04, // adaptivity: exact answers for small streams
	})
	defer c.Close()

	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := c.Writer(i)
			// Each writer sees 500k users; ranges overlap 50% with the
			// next writer, so the true distinct count is 1.25M.
			base := uint64(i) * 250_000
			for u := base; u < base+500_000; u++ {
				w.UpdateUint64(u)
			}
			w.Flush()
		}(i)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	ticker := time.NewTicker(50 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-done:
			fmt.Printf("final estimate: %.0f distinct users (true: 1250000, err %.2f%%)\n",
				c.Estimate(), 100*(c.Estimate()/1_250_000-1))
			return
		case <-ticker.C:
			// Wait-free query while ingestion is running.
			fmt.Printf("live estimate: %.0f\n", c.Estimate())
		}
	}
}
