// Networkfeed simulates the paper's motivating deployment: multiple
// network feeds streaming events into one sketch while an analytics
// dashboard queries it continuously ("updates are constantly streaming
// from a feed or multiple feeds, while queries arrive at a lower
// rate", §7.1).
//
// Each feed is a goroutine producing events with feed-specific skew
// and bursts of duplicates (retransmissions). Events are ingested in
// batches — network feeds deliver packets in bursts, and the batch API
// (UpdateUint64Batch) is the recommended high-throughput path: one
// hash+filter pass per burst instead of per-item bookkeeping. A
// dashboard goroutine polls the distinct-flow estimate every 100ms,
// the way a network monitor would drive an anomaly detector.
//
// Run: go run ./examples/networkfeed
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	fcds "github.com/fcds/fcds"
)

// flowEvent is a 5-tuple-ish flow key, pre-packed into a uint64: the
// sketch only ever sees the key's hash, so the packing is free to be
// lossy.
func flowEvent(srcIP, dstPort, burst uint64) uint64 {
	return srcIP<<24 | dstPort<<8 | burst
}

func main() {
	const feeds = 4
	c := fcds.NewConcurrentTheta(fcds.ConcurrentThetaConfig{
		K: 4096, Writers: feeds, MaxError: 0.04,
	})
	defer c.Close()

	var produced atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for f := 0; f < feeds; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			w := c.Writer(f)
			// Each feed owns a /16 of source space; 20% of packets are
			// retransmissions of the previous flow (duplicates). Packets
			// arrive in bursts, so each burst is ingested with one batch
			// call.
			const burstLen = 256
			burst := make([]uint64, 0, burstLen)
			var prev uint64
			for i := uint64(0); ; i++ {
				select {
				case <-stop:
					w.UpdateUint64Batch(burst)
					produced.Add(int64(len(burst)))
					w.Flush()
					return
				default:
				}
				var ev uint64
				if i%5 == 4 {
					ev = prev // retransmission — must not inflate count
				} else {
					ev = flowEvent(uint64(f)<<16|(i%40_000), i%1024, 0)
					prev = ev
				}
				burst = append(burst, ev)
				if len(burst) == burstLen {
					w.UpdateUint64Batch(burst)
					produced.Add(burstLen)
					burst = burst[:0]
				}
			}
		}(f)
	}

	// Dashboard: low-rate reader.
	deadline := time.After(2 * time.Second)
	ticker := time.NewTicker(100 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			fmt.Printf("[dashboard] ~%.0f distinct flows (%d events ingested)\n",
				c.Estimate(), produced.Load())
		case <-deadline:
			close(stop)
			wg.Wait()
			// True distinct flows: 4 feeds × 40k sources... port varies
			// too; report the final estimate against ingested volume.
			fmt.Printf("final: ~%.0f distinct flows from %d events (dup-heavy stream)\n",
				c.Estimate(), produced.Load())
			return
		}
	}
}
