// Distributed runs the two-node aggregation pipeline on real sockets:
// an *edge* node ingests keyed traffic over the wire protocol, and an
// *aggregator* node receives the edge's table snapshot and merges it
// with its own locally-served traffic — per-tenant queries and the
// all-tenants rollup on the aggregator then answer over the union of
// both nodes' streams.
//
// This is the same topology `fcds-serve -push` runs across machines;
// here both nodes live in one process so the demo is self-contained.
//
// Run: go run ./examples/distributed
package main

import (
	"fmt"
	"log"

	fcds "github.com/fcds/fcds"
	"github.com/fcds/fcds/internal/stream"
)

const (
	tenants   = 200
	batches   = 150
	batchSize = 512
)

func tenantName(id uint64) string { return fmt.Sprintf("tenant-%03d", id) }

// node is one fcds ingest endpoint with a Θ table behind it.
type node struct {
	srv *fcds.IngestServer
	tab *fcds.ThetaTable
}

func startNode() *node {
	tab := fcds.NewThetaTable(fcds.ThetaTableConfig{
		Table: fcds.TableConfig{Writers: 2},
		K:     4096,
	})
	srv, err := fcds.Serve("127.0.0.1:0", fcds.IngestServerConfig{})
	if err != nil {
		log.Fatal(err)
	}
	if err := fcds.RegisterThetaTable(srv, "events", tab); err != nil {
		log.Fatal(err)
	}
	return &node{srv: srv, tab: tab}
}

func (n *node) stop() {
	n.srv.Close()
	n.tab.Close()
}

// ingest drives zipfian per-tenant traffic into a node over the wire.
func ingest(addr string, seed uint64) {
	c, err := fcds.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	keys := make([]string, batchSize)
	users := make([]uint64, batchSize)
	tenantDraw := stream.NewZipf(tenants, 1.2, seed)
	userDraw := stream.NewScrambled(seed << 40)
	for b := 0; b < batches; b++ {
		for i := range keys {
			keys[i] = tenantName(tenantDraw.Next())
			users[i] = userDraw.Next()
		}
		if err := c.Ingest("events", keys, users); err != nil {
			log.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		log.Fatal(err)
	}
}

func main() {
	edge := startNode()
	defer edge.stop()
	agg := startNode()
	defer agg.stop()
	edgeAddr := edge.srv.Addr().String()
	aggAddr := agg.srv.Addr().String()
	fmt.Printf("edge node on %s, aggregator on %s\n", edgeAddr, aggAddr)

	// Disjoint user populations: the edge sees one half of the traffic,
	// the aggregator serves the other half directly.
	ingest(edgeAddr, 1)
	ingest(aggAddr, 2)

	// Ship the edge's snapshot upstream (what `fcds-serve -push` does
	// on a timer): pull the edge's merged FCTB blob, push it into the
	// aggregator, where it merges per key with the live table.
	ec, err := fcds.Dial(edgeAddr)
	if err != nil {
		log.Fatal(err)
	}
	defer ec.Close()
	blob, err := ec.PullSnapshot("events")
	if err != nil {
		log.Fatal(err)
	}
	ac, err := fcds.Dial(aggAddr)
	if err != nil {
		log.Fatal(err)
	}
	defer ac.Close()
	if err := ac.PushSnapshot("events", blob); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shipped edge snapshot: %d bytes, %d tenants on the edge\n",
		len(blob), edge.tab.Keys())

	// The aggregator now answers over both nodes' streams.
	if _, err := ac.PullSnapshot("events"); err != nil { // drain local keys too
		log.Fatal(err)
	}
	for _, tenant := range []string{tenantName(0), tenantName(1), tenantName(7)} {
		kind, qblob, found, err := ac.QueryCompact("events", tenant)
		if err != nil || !found || kind != 1 {
			log.Fatalf("query %s: found=%v kind=%d err=%v", tenant, found, kind, err)
		}
		c, err := fcds.UnmarshalThetaCompact(qblob)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: ~%.0f unique users across both nodes (95%%: %.0f–%.0f)\n",
			tenant, c.Estimate(), c.LowerBound(2), c.UpperBound(2))
	}
	_, rblob, err := ac.Rollup("events")
	if err != nil {
		log.Fatal(err)
	}
	ru, err := fcds.UnmarshalThetaCompact(rblob)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("all tenants, both nodes: ~%.0f unique users (true %d)\n",
		ru.Estimate(), 2*batches*batchSize)

	h, err := ac.Health()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("aggregator health: %d tenants, %d frames, %d items, %d snapshot(s) received\n",
		h.Keys, h.Frames, h.Items, h.Snapshots)
}
