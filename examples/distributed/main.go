// Distributed runs the two-node aggregation pipeline on real sockets:
// an *edge* node ingests keyed traffic over the wire protocol, and an
// *aggregator* node receives the edge's table snapshot and merges it
// with its own locally-served traffic — per-tenant queries and the
// all-tenants rollup on the aggregator then answer over the union of
// both nodes' streams.
//
// This is the same topology `fcds-serve -push` runs across machines;
// here both nodes live in one process so the demo is self-contained.
//
// The second act demonstrates the failure semantics (see the fcds
// package documentation): the aggregator checkpoints its state and
// "crashes"; the edge ships through a reconnecting client whose
// bounded outbox holds the latest snapshot per source while the
// upstream is down; the restarted aggregator recovers the checkpoint
// before its port opens, the queued ship is delivered on reconnect,
// and — because named ships replace rather than merge — the rollup
// lands exactly where it was before the crash.
//
// The coda assembles the observability registry by hand — the same
// per-subsystem registrations `fcds-serve -metrics-addr` serves at
// /metrics — and reads the pipeline's counters through it.
//
// Run: go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	fcds "github.com/fcds/fcds"
	"github.com/fcds/fcds/internal/stream"
)

const (
	tenants   = 200
	batches   = 150
	batchSize = 512
)

func tenantName(id uint64) string { return fmt.Sprintf("tenant-%03d", id) }

// node is one fcds ingest endpoint with a Θ table behind it.
type node struct {
	srv *fcds.IngestServer
	tab *fcds.ThetaTable
}

func startNode() *node {
	tab := fcds.NewThetaTable(fcds.ThetaTableConfig{
		Table: fcds.TableConfig{Writers: 2},
		K:     4096,
	})
	srv, err := fcds.Serve("127.0.0.1:0", fcds.IngestServerConfig{})
	if err != nil {
		log.Fatal(err)
	}
	if err := fcds.RegisterThetaTable(srv, "events", tab); err != nil {
		log.Fatal(err)
	}
	return &node{srv: srv, tab: tab}
}

func (n *node) stop() {
	n.srv.Close()
	n.tab.Close()
}

// ingest drives zipfian per-tenant traffic into a node over the wire.
func ingest(addr string, seed uint64) {
	c, err := fcds.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	keys := make([]string, batchSize)
	users := make([]uint64, batchSize)
	tenantDraw := stream.NewZipf(tenants, 1.2, seed)
	userDraw := stream.NewScrambled(seed << 40)
	for b := 0; b < batches; b++ {
		for i := range keys {
			keys[i] = tenantName(tenantDraw.Next())
			users[i] = userDraw.Next()
		}
		if err := c.Ingest("events", keys, users); err != nil {
			log.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		log.Fatal(err)
	}
}

func main() {
	edge := startNode()
	defer edge.stop()
	agg := startNode()
	defer agg.stop()
	edgeAddr := edge.srv.Addr().String()
	aggAddr := agg.srv.Addr().String()
	fmt.Printf("edge node on %s, aggregator on %s\n", edgeAddr, aggAddr)

	// Disjoint user populations: the edge sees one half of the traffic,
	// the aggregator serves the other half directly.
	ingest(edgeAddr, 1)
	ingest(aggAddr, 2)

	// Ship the edge's snapshot upstream (what `fcds-serve -push` does
	// on a timer): pull the edge's merged FCTB blob, push it into the
	// aggregator tagged with a source id, so later cumulative re-ships
	// replace this one instead of re-merging it.
	ec, err := fcds.Dial(edgeAddr)
	if err != nil {
		log.Fatal(err)
	}
	defer ec.Close()
	blob, err := ec.PullSnapshot("events")
	if err != nil {
		log.Fatal(err)
	}
	ac, err := fcds.Dial(aggAddr)
	if err != nil {
		log.Fatal(err)
	}
	defer ac.Close()
	if err := ac.PushSnapshotFrom("events", "edge-1", blob); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shipped edge snapshot: %d bytes, %d tenants on the edge\n",
		len(blob), edge.tab.Keys())

	// The aggregator now answers over both nodes' streams.
	if _, err := ac.PullSnapshot("events"); err != nil { // drain local keys too
		log.Fatal(err)
	}
	for _, tenant := range []string{tenantName(0), tenantName(1), tenantName(7)} {
		kind, qblob, found, err := ac.QueryCompact("events", tenant)
		if err != nil || !found || kind != 1 {
			log.Fatalf("query %s: found=%v kind=%d err=%v", tenant, found, kind, err)
		}
		c, err := fcds.UnmarshalThetaCompact(qblob)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: ~%.0f unique users across both nodes (95%%: %.0f–%.0f)\n",
			tenant, c.Estimate(), c.LowerBound(2), c.UpperBound(2))
	}
	_, rblob, err := ac.Rollup("events")
	if err != nil {
		log.Fatal(err)
	}
	ru, err := fcds.UnmarshalThetaCompact(rblob)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("all tenants, both nodes: ~%.0f unique users (true %d)\n",
		ru.Estimate(), 2*batches*batchSize)

	h, err := ac.Health()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("aggregator health: %d tenants, %d frames, %d items, %d snapshot(s) received\n",
		h.Keys, h.Frames, h.Items, h.Snapshots)

	// --- Act 2: the aggregator crashes and recovers --------------------
	//
	// Checkpoint the aggregator's state (atomic temp+rename FCCK files,
	// CRC-checked on restore), then kill it mid-run. The edge ships
	// through a reconnecting client instead of a bare one: with the
	// upstream down, the ship parks in a bounded outbox that coalesces
	// to the latest snapshot per (table, source), and the exponential-
	// backoff dial loop probes until the upstream returns.
	ckptDir, err := os.MkdirTemp("", "fcds-ckpt-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(ckptDir)
	cst, err := agg.srv.WriteCheckpoints(ckptDir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpointed %d table(s), %d bytes\n", cst.Tables, cst.Bytes)
	ac.Close()
	agg.stop() // crash stand-in: the port goes dark

	rel, err := fcds.DialReliable(aggAddr, fcds.ReliableIngestConfig{
		MinBackoff: 20 * time.Millisecond,
	}, time.Second)
	if err != nil {
		log.Fatal(err)
	}
	defer rel.Close()
	// Re-ship the edge's cumulative snapshot under the same source id.
	// Named ships REPLACE that source's previous contribution on the
	// server, so redelivery after an ambiguous failure cannot
	// double-count — that is what makes retrying safe.
	if err := rel.ShipSnapshot("events", "edge-1", blob); err != nil {
		log.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // let a few dials fail
	fmt.Printf("upstream down: %d dial(s) failed, snapshot held for redelivery\n",
		rel.Stats().Failures)

	// Restart: fresh tables, recover the checkpoint, THEN open the port
	// — clients reconnecting after the outage never observe the
	// aggregator without its recovered state.
	tab2 := fcds.NewThetaTable(fcds.ThetaTableConfig{
		Table: fcds.TableConfig{Writers: 2},
		K:     4096,
	})
	defer tab2.Close()
	srv2 := fcds.NewIngestServer(fcds.IngestServerConfig{})
	if err := fcds.RegisterThetaTable(srv2, "events", tab2); err != nil {
		log.Fatal(err)
	}
	rst, err := srv2.RestoreCheckpoints(ckptDir)
	if err != nil {
		log.Fatal(err)
	}
	if err := srv2.Start(aggAddr); err != nil {
		log.Fatal(err)
	}
	defer srv2.Close()
	fmt.Printf("restarted aggregator: recovered %d table(s) from checkpoint\n", rst.Tables)

	// The parked ship is delivered on reconnect and replaces the
	// checkpointed edge contribution it duplicates.
	if err := rel.Drain(10 * time.Second); err != nil {
		log.Fatal(err)
	}
	ac2, err := fcds.Dial(aggAddr)
	if err != nil {
		log.Fatal(err)
	}
	defer ac2.Close()
	if _, err := ac2.PullSnapshot("events"); err != nil {
		log.Fatal(err)
	}
	_, rblob2, err := ac2.Rollup("events")
	if err != nil {
		log.Fatal(err)
	}
	ru2, err := fcds.UnmarshalThetaCompact(rblob2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("post-crash rollup: ~%.0f unique users (pre-crash ~%.0f) — nothing lost, nothing double-counted\n",
		ru2.Estimate(), ru.Estimate())
	st := rel.Stats()
	fmt.Printf("shipper: %d dial(s), %d failure(s), %d delivered, %d dropped\n",
		st.Dials, st.Failures, st.Delivered, st.Dropped)

	// --- Act 3: observability ------------------------------------------
	//
	// The registry fcds-serve exposes at -metrics-addr, assembled by
	// hand: each subsystem registers func-backed series into one shared
	// registry, so a scrape (or this Values call) reads the live
	// counters without touching any hot path. Serving it over HTTP is
	// one line: http.Handle("/metrics", fcds.MetricsHandler(reg)).
	reg := fcds.NewMetricsRegistry()
	srv2.RegisterMetrics(reg)
	tab2.RegisterMetrics(reg, "events")
	rel.RegisterMetrics(reg, aggAddr)
	vals := reg.Values()
	fmt.Printf("registry: %d live series; tables=%.0f, snapshots received=%.0f, shipper delivered=%.0f, backoff=%.0fs\n",
		len(vals),
		vals[`fcds_server_tables`],
		vals[`fcds_server_snapshots_total`],
		vals[fmt.Sprintf("fcds_client_delivered_total{upstream=%q}", aggAddr)],
		vals[fmt.Sprintf("fcds_client_backoff_seconds{upstream=%q}", aggAddr)])
}
