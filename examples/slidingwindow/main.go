// Slidingwindow answers the dashboard question the point-in-time
// sketches cannot: "how many unique users in the LAST 5 MINUTES?".
//
// An epoch-ring windowed Θ sketch tracks sitewide uniques while a
// windowed keyed table tracks the same per tenant. Time is simulated:
// each loop iteration is one "minute" ending in an explicit Rotate
// (production would call AutoRotate once and let the Width-ticker
// drive it). Traffic has a daily-life shape — a steady base, a burst,
// then silence — so the window visibly rises and, crucially, falls
// again as burst epochs expire: a plain sketch only ever goes up.
//
// Run: go run ./examples/slidingwindow
package main

import (
	"fmt"
	"time"

	fcds "github.com/fcds/fcds"
)

const (
	slots     = 5 // window = last 5 "minutes"
	writersN  = 2
	baseUsers = 800  // users active every minute
	burstSize = 4000 // extra one-off users per burst minute
)

func main() {
	sitewide := fcds.NewWindowedTheta(fcds.WindowedThetaConfig{
		Sketch: fcds.ConcurrentThetaConfig{K: 16384, Writers: writersN},
		Window: fcds.WindowConfig{Slots: slots, Width: time.Minute},
	})
	defer sitewide.Close()

	perTenant := fcds.NewWindowedThetaTable(
		fcds.ThetaTableConfig{
			Table: fcds.TableConfig{Writers: 1},
			K:     2048,
		},
		fcds.WindowConfig{Slots: slots, Width: time.Minute, Pool: sitewide.Pool()},
	)
	defer perTenant.Close()

	fmt.Printf("sliding window: %d slots x 1m; per-epoch relaxation r = %d\n\n",
		slots, sitewide.RelaxationPerEpoch())
	fmt.Println("minute  traffic          window-uniques  acme-window  notes")

	tw := perTenant.Writer(0)
	for minute := 0; minute < 14; minute++ {
		traffic, note := "base", ""
		var burst int
		switch {
		case minute >= 3 && minute <= 4:
			traffic, burst = "base+burst", burstSize
			note = "burst enters the window"
		case minute == 5:
			note = "burst over; epochs still in window"
		case minute == 9:
			note = "last burst epoch expired"
		case minute >= 11:
			traffic = "silence"
			note = "only fresh epochs remain"
		}

		// One "minute" of traffic through the batch pipeline. The same
		// base users return every minute (uniques, not volume); burst
		// users are one-off.
		if traffic != "silence" {
			var wg = make(chan struct{}, writersN)
			for wi := 0; wi < writersN; wi++ {
				go func(wi int) {
					defer func() { wg <- struct{}{} }()
					w := sitewide.Writer(wi)
					batch := make([]uint64, 0, 256)
					for u := wi; u < baseUsers+burst; u += writersN {
						id := uint64(u)
						if u >= baseUsers {
							// One-off burst visitor, unique to this minute.
							id = uint64(1_000_000 + minute*100_000 + u)
						}
						batch = append(batch, id)
						if len(batch) == cap(batch) {
							w.UpdateBatch(batch)
							batch = batch[:0]
						}
					}
					w.UpdateBatch(batch)
					w.Flush()
				}(wi)
			}
			for wi := 0; wi < writersN; wi++ {
				<-wg
			}
			// Tenant "acme" sees a slice of the same minute.
			keys := make([]string, 0, 64)
			ids := make([]uint64, 0, 64)
			for u := 0; u < 50+burst/100; u++ {
				keys = append(keys, "acme")
				ids = append(ids, uint64(minute*1_000+u))
			}
			tw.UpdateKeyedBatch(keys, ids)
			perTenant.Drain()
		}

		acme := "-"
		if est, ok := perTenant.QueryWindow("acme"); ok {
			acme = fmt.Sprintf("%8.0f", est)
		}
		fmt.Printf("%5dm  %-15s %14.0f  %11s  %s\n",
			minute, traffic, sitewide.QueryWindow(), acme, note)

		sitewide.Rotate() // the minute ends (AutoRotate in production)
		perTenant.Rotate()
	}

	fmt.Println("\nthe window rises with the burst and falls back after it expires —")
	fmt.Println("a point-in-time sketch would have stayed at its high-water mark.")
}
