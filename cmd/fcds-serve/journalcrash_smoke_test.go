//go:build smoke

// Two-process journal recovery smoke: an aggregator running with
// -journal and NO checkpointing is SIGKILLed while an edge's push loop
// is live, then restarted on the same journal directory. Everything the
// dead process had ACKed — the edge's periodic ships and a one-shot
// direct push nothing will redeliver — must come back from journal
// replay alone.
//
//	go test -tags smoke -run JournalCrashRestart ./cmd/fcds-serve/
package main

import (
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"github.com/fcds/fcds/internal/quantiles"
	"github.com/fcds/fcds/internal/server/client"
)

func TestJournalCrashRestartSmoke(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "fcds-serve")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	aggAddr := reservePort(t)
	edgeAddr := reservePort(t)
	wal := t.TempDir()

	startAgg := func() *exec.Cmd {
		cmd := exec.Command(bin,
			"-addr", aggAddr,
			"-tables", "lat=quantiles/str",
			"-journal", wal,
			"-journal-fsync-every", "1",
			"-v")
		cmd.Stderr = procLog{t, "agg"}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		return cmd
	}
	agg := startAgg()
	defer func() { _ = agg.Process.Kill() }()

	edge := exec.Command(bin,
		"-addr", edgeAddr,
		"-tables", "lat=quantiles/str",
		"-push", aggAddr,
		"-push-every", "100ms",
		"-push-source", "edge-smoke",
		"-dial-timeout", "2s",
		"-v")
	edge.Stderr = procLog{t, "edge"}
	if err := edge.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = edge.Process.Kill() }()

	dialRetry := func(addr string) *client.Client {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for {
			c, err := client.Dial(addr, client.WithDialTimeout(time.Second))
			if err == nil {
				return c
			}
			if time.Now().After(deadline) {
				t.Fatalf("dial %s: %v", addr, err)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
	ingestFloats := func(c *client.Client, lo, hi int) {
		t.Helper()
		keys := make([]string, 0, hi-lo)
		vals := make([]float64, 0, hi-lo)
		for v := lo; v < hi; v++ {
			keys = append(keys, "api")
			vals = append(vals, float64(v))
		}
		if err := c.IngestFloat("lat", keys, vals); err != nil {
			t.Fatal(err)
		}
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	waitN := func(want uint64, timeout time.Duration) {
		t.Helper()
		deadline := time.Now().Add(timeout)
		var last uint64
		for {
			if c, err := client.Dial(aggAddr, client.WithDialTimeout(time.Second)); err == nil {
				if _, blob, err := c.Rollup("lat"); err == nil {
					if sk, err := quantiles.Unmarshal(blob); err == nil {
						last = sk.Snapshot().N()
					}
				}
				c.Close()
			}
			if last == want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("aggregator N = %d, want %d", last, want)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}

	// 1000 samples through the edge; the push loop ships the cumulative
	// snapshot upstream and every accepted ship is journaled.
	ec := dialRetry(edgeAddr)
	defer ec.Close()
	ingestFloats(ec, 0, 1000)
	waitN(1000, 20*time.Second)

	// A one-shot push under its own source id: after the kill, no
	// process on earth re-sends this — only the journal has it.
	blob, err := ec.PullSnapshot("lat")
	if err != nil {
		t.Fatal(err)
	}
	ac := dialRetry(aggAddr)
	if err := ac.PushSnapshotFrom("lat", "oneshot-smoke", blob); err != nil {
		t.Fatal(err)
	}
	ac.Close()
	waitN(2000, 10*time.Second)

	// SIGKILL with the push loop mid-flight: no drain, no checkpoint
	// directory exists at all. The journal is the only durable state.
	if err := agg.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = agg.Wait()

	// The edge keeps aggregating into its queued cumulative snapshot.
	ingestFloats(ec, 5000, 5500)

	// Restart on the same journal directory: replay must restore the
	// one-shot 1000 plus the edge's last journaled ship, and the edge's
	// re-shipped cumulative 1500 then REPLACES its restored state.
	agg = startAgg()
	defer func() { _ = agg.Process.Kill() }()
	waitN(2500, 30*time.Second)

	// The restarted process knows it recovered through the journal.
	ac = dialRetry(aggAddr)
	h, err := ac.Health()
	if err != nil {
		t.Fatal(err)
	}
	ac.Close()
	if !h.HasJournal || h.JournalReplayed == 0 {
		t.Fatalf("health after restart = %+v, want journal attached with replayed records", h)
	}

	// Graceful shutdown still works after all that.
	if err := edge.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := waitExit(edge, 15*time.Second); err != nil {
		t.Fatalf("edge shutdown: %v", err)
	}
	if err := agg.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := waitExit(agg, 15*time.Second); err != nil {
		t.Fatalf("aggregator shutdown: %v", err)
	}
}
