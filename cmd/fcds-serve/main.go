// Command fcds-serve runs an fcds network ingest node: it listens for
// the keyed-batch wire protocol (see the fcds package documentation's
// "Network ingestion and snapshot shipping" section), terminates
// batches into in-memory keyed sketch tables, and answers per-key
// queries, rollups, snapshot pulls and snapshot pushes.
//
// With -push, the node also acts as an aggregation edge: on every
// -push-every tick it captures each table's merged cumulative snapshot
// and ships it to the upstream node(s) tagged with this node's source
// id, so an upstream replaces the previous ship instead of re-merging
// it (re-merging would double-count quantiles samples every tick) —
// chain two fcds-serve processes and you have the paper's distributed-
// aggregation fabric on real sockets.
//
// Shipping is fault tolerant: -push takes a comma-separated upstream
// list, each upstream gets its own reconnecting client (exponential
// backoff + jitter, bounded latest-per-table outbox), and a dead
// upstream never stalls a healthy one. With -checkpoint-dir the node
// also checkpoints every table's aggregated state to disk on a timer
// (atomic, fsync'd, CRC-checked, generational files; -checkpoint-retain
// bounds how many generations stay on disk) and recovers it on boot
// before the port opens, so an aggregator restart loses at most one
// checkpoint interval of direct ingest — pushed per-source snapshots
// heal entirely when their pushers reconnect. With -journal the node
// additionally write-ahead-logs every snapshot push, window ship and
// eviction spill between checkpoints and replays that tail on boot,
// shrinking the recovery gap to at most -journal-fsync-every minus one
// acknowledged records. See the fcds package documentation's "Failure
// semantics" section.
//
// Usage:
//
//	fcds-serve [-addr :9700] [-tables events=theta/str,lat=quantiles/str]
//	           [-writers N] [-param K] [-max-keys N] [-ttl D]
//	           [-push a:9700,b:9700 -push-every 5s -push-source id]
//	           [-checkpoint-dir DIR -checkpoint-every 30s -checkpoint-retain N]
//	           [-journal DIR -journal-fsync-every N -journal-max-bytes N]
//	           [-idle-timeout 5m] [-dial-timeout 10s]
//	           [-compression=false] [-read-burst N] [-write-burst N]
//	           [-metrics-addr :9701] [-stats-every D] [-v]
//
// Table specs are name=family/keytype with family one of theta,
// quantiles, hll and keytype one of str, u64. SIGINT/SIGTERM shut the
// node down gracefully: in-flight frames drain, one final push runs
// and drains per upstream (when configured), a final checkpoint is
// written (when configured), and the tables close.
//
// Datapath tuning: ingest frames check writer handles out of a
// per-table pool, so any number of connections share -writers handles
// — raise -writers when fcds_server_writer_pool_waits_total climbs.
// -read-burst and -write-burst size the per-connection socket buffers
// (defaults 128KiB/64KiB); -compression=false refuses the per-frame
// batch compression clients may offer at HELLO (they fall back to
// uncompressed frames automatically).
//
// Observability: every subsystem (pool, tables, server, checkpoints,
// per-upstream shippers) registers into one metrics registry.
// -metrics-addr starts an ops HTTP listener serving /metrics
// (Prometheus text format) and /healthz (the HEALTH counters as JSON
// with an explicit has_checkpoint field); -stats-every logs the same
// registry as periodic dumps, so scrapes and logs share one
// formatting path. See the fcds package documentation's
// "Observability and operating fcds-serve" section for the metrics
// worth alerting on.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"hash/crc32"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	fcds "github.com/fcds/fcds"
)

type tableSpec struct {
	name, family, keyType string
}

func parseSpecs(s string) ([]tableSpec, error) {
	var specs []tableSpec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rest, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("table spec %q: want name=family/keytype", part)
		}
		family, keyType, ok := strings.Cut(rest, "/")
		if !ok {
			keyType = "str"
		}
		switch family {
		case "theta", "quantiles", "hll":
		default:
			return nil, fmt.Errorf("table spec %q: unknown family %q", part, family)
		}
		switch keyType {
		case "str", "u64":
		default:
			return nil, fmt.Errorf("table spec %q: unknown key type %q", part, keyType)
		}
		specs = append(specs, tableSpec{name: name, family: family, keyType: keyType})
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("no tables configured")
	}
	return specs, nil
}

// node is one running table: its registration plus the hooks the push
// loop, metrics registration and shutdown need.
type node struct {
	spec            tableSpec
	snapshot        func() ([]byte, error)
	keys            func() int
	registerMetrics func(*fcds.MetricsRegistry)
	close           func()
}

func main() {
	addr := flag.String("addr", ":9700", "listen address")
	tables := flag.String("tables", "events=theta/str", "comma-separated table specs: name=family/keytype (family: theta|quantiles|hll, keytype: str|u64)")
	writers := flag.Int("writers", 4, "writer handles per table (N of the per-key relaxation bound)")
	param := flag.Int("param", 0, "per-key sketch parameter: K for theta/quantiles, precision for hll (0 = family default)")
	maxKeys := flag.Int("max-keys", 0, "live-key cap per table (0 = unlimited; LRU eviction past it)")
	ttl := flag.Duration("ttl", 0, "evict keys idle longer than this (0 = never)")
	push := flag.String("push", "", "comma-separated upstream fcds-serve addresses to ship snapshots to (each gets an independent reconnect loop)")
	pushEvery := flag.Duration("push-every", 10*time.Second, "snapshot shipping interval (with -push)")
	pushSource := flag.String("push-source", "", "source id for pushed snapshots (default host/pid); upstreams replace this source's previous snapshot on every push")
	ckptDir := flag.String("checkpoint-dir", "", "directory for durable table checkpoints (restored on boot before the port opens; empty = no checkpointing)")
	ckptEvery := flag.Duration("checkpoint-every", 30*time.Second, "checkpoint interval (with -checkpoint-dir)")
	ckptRetain := flag.Int("checkpoint-retain", 2, "checkpoint generations kept per table (and journal files kept past a checkpoint); older ones are pruned after each successful pass")
	journalDir := flag.String("journal", "", "directory for the append-only durability journal: pushes and eviction spills are logged before they are applied and replayed on boot, shrinking crash loss from one checkpoint interval to at most -journal-fsync-every records (empty = disabled)")
	journalFsyncEvery := flag.Int("journal-fsync-every", 1, "fsync the journal after every Nth record; 1 = every record (strongest durability), higher amortizes the fsync at the cost of losing up to N-1 acknowledged records in a crash")
	journalMaxBytes := flag.Int64("journal-max-bytes", 64<<20, "journal size that triggers self-compaction (latest record per pushing source is kept, eviction spills are carried verbatim)")
	idleTimeout := flag.Duration("idle-timeout", 5*time.Minute, "close connections idle longer than this (0 = never)")
	compression := flag.Bool("compression", true, "accept client-offered per-frame batch compression (false refuses the feature at HELLO; clients fall back to uncompressed frames)")
	readBurst := flag.Int("read-burst", 0, "per-connection read buffer in bytes: pipelined frames decode out of one burst (0 = default 128KiB)")
	writeBurst := flag.Int("write-burst", 0, "per-connection response buffer in bytes (0 = default 64KiB)")
	dialTimeout := flag.Duration("dial-timeout", 10*time.Second, "bound on upstream connect + HELLO (0 = none)")
	metricsAddr := flag.String("metrics-addr", "", "ops HTTP listen address serving /metrics (Prometheus text) and /healthz (JSON); empty = disabled")
	statsEvery := flag.Duration("stats-every", 0, "log a metrics-registry dump at this interval (0 = never)")
	verbose := flag.Bool("v", false, "log connection-level diagnostics")
	flag.Parse()

	lg := log.New(os.Stderr, "fcds-serve: ", log.LstdFlags)
	specs, err := parseSpecs(*tables)
	if err != nil {
		lg.Fatal(err)
	}

	cfg := fcds.IngestServerConfig{
		IdleTimeout:      *idleTimeout,
		NoCompression:    !*compression,
		ReadBurst:        *readBurst,
		WriteBurst:       *writeBurst,
		CheckpointRetain: *ckptRetain,
	}
	if *verbose {
		cfg.Logf = lg.Printf
	}
	// Register every table before the port opens: a client that
	// connects the moment the listener is up (a supervisor-restarted
	// pipeline) must never see unknown-table errors.
	srv := fcds.NewIngestServer(cfg)
	pool := fcds.NewPropagatorPool(0) // one executor for every table
	defer pool.Close()
	// One registry for every subsystem: the /metrics endpoint, the
	// -stats-every log dump and /healthz all read the same series.
	reg := fcds.NewMetricsRegistry()
	fcds.RegisterPoolMetrics(reg, pool)
	srv.RegisterMetrics(reg)
	nodes := make([]*node, 0, len(specs))
	for _, spec := range specs {
		n, err := register(srv, spec, *writers, *param, *maxKeys, *ttl, pool, *journalDir != "", lg)
		if err != nil {
			lg.Fatal(err)
		}
		n.registerMetrics(reg)
		nodes = append(nodes, n)
		lg.Printf("serving table %s (%s, %s keys)", spec.name, spec.family, spec.keyType)
	}
	// Recover the previous run's checkpoints before the port opens, so
	// the first query after a restart already answers over everything
	// the crashed process had checkpointed.
	if *ckptDir != "" {
		st, err := srv.RestoreCheckpoints(*ckptDir)
		if err != nil {
			lg.Fatalf("checkpoint restore: %v", err)
		}
		if st.Tables > 0 || st.Skipped > 0 {
			lg.Printf("restored %d table checkpoint(s) (%d bytes, %d skipped, %d fallbacks) from %s",
				st.Tables, st.Bytes, st.Skipped, st.Fallbacks, *ckptDir)
		}
	}
	// Then replay the journal tail on top of the restored state (records
	// the checkpoints already cover are LSN-skipped), open a fresh
	// journal file, and arm write-ahead journaling — all before the port
	// opens, so the first frame after a restart is journaled and the
	// first query answers over everything the crashed process ACKed.
	var jnl *fcds.IngestJournal
	if *journalDir != "" {
		rst, err := srv.ReplayJournal(*journalDir)
		if err != nil {
			lg.Fatalf("journal replay: %v", err)
		}
		if rst.Files > 0 {
			lg.Printf("journal replay: %d records applied (%d already checkpointed, %d stale, %d unknown-table, %d errors, %d torn bytes) from %s",
				rst.Records, rst.Skipped, rst.Stale, rst.UnknownTable, rst.Errors, rst.TornBytes, *journalDir)
		}
		jnl, err = fcds.OpenIngestJournal(*journalDir, fcds.IngestJournalConfig{
			FsyncEvery: *journalFsyncEvery,
			MaxBytes:   *journalMaxBytes,
			Retain:     *ckptRetain,
			Logf:       lg.Printf,
		})
		if err != nil {
			lg.Fatalf("journal open: %v", err)
		}
		srv.AttachJournal(jnl)
		lg.Printf("journaling to %s (fsync every %d record(s))", *journalDir, *journalFsyncEvery)
	}
	if err := srv.Start(*addr); err != nil {
		lg.Fatal(err)
	}
	lg.Printf("listening on %s", srv.Addr())

	// Snapshot shipping: every push carries the full cumulative
	// snapshot tagged with a stable source id, so upstreams replace
	// this node's previous ship instead of merging it — re-merging each
	// tick would re-count every previously shipped sample in
	// non-idempotent families (quantiles). The id must survive
	// reconnects and stay unique among pushers (including this node's
	// own previous incarnation, whose retained snapshots a restart must
	// not clobber with an initially empty table); host/pid does both.
	if *pushSource == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "fcds"
		}
		*pushSource = fmt.Sprintf("%s/%d", host, os.Getpid())
	}
	// One reconnecting client per upstream: outage handling (backoff,
	// outbox coalescing, redelivery) is per upstream by construction, so
	// replicating to a dead aggregator never stalls a live one.
	type upstream struct {
		addr string
		rel  *fcds.ReliableIngestClient
	}
	var upstreams []upstream
	if *push != "" {
		for i, addr := range strings.Split(*push, ",") {
			addr = strings.TrimSpace(addr)
			if addr == "" {
				continue
			}
			seed := uint64(crc32.ChecksumIEEE([]byte(*pushSource))) + uint64(i)<<32
			rel, err := fcds.DialReliable(addr, fcds.ReliableIngestConfig{
				Seed: seed,
				OnState: func(addr string) func(s fcds.IngestConnState, err error) {
					return func(s fcds.IngestConnState, err error) {
						if err != nil {
							lg.Printf("push %s: %s (%v)", addr, s, err)
						} else if *verbose {
							lg.Printf("push %s: %s", addr, s)
						}
					}
				}(addr),
			}, *dialTimeout)
			if err != nil {
				lg.Fatalf("push %s: %v", addr, err)
			}
			rel.RegisterMetrics(reg, addr)
			upstreams = append(upstreams, upstream{addr: addr, rel: rel})
		}
	}

	// Ops endpoint: /metrics in Prometheus text format, /healthz as the
	// HEALTH counters in JSON. Separate listener from the ingest port —
	// scrapers speak HTTP, ingest clients speak the binary protocol.
	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", fcds.MetricsHandler(reg))
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
			st := srv.Stats()
			age, hasCkpt := srv.CheckpointAge()
			replayed, replayAge, _ := srv.JournalReplay()
			body := map[string]any{
				"tables":               st.Tables,
				"keys":                 st.Keys,
				"conns":                st.Conns,
				"conns_total":          st.ConnsTotal,
				"frames":               st.Frames,
				"items":                st.Items,
				"snapshots":            st.Snapshots,
				"errors":               st.Errors,
				"has_checkpoint":       hasCkpt,
				"checkpoint_age_sec":   age.Seconds(),
				"has_journal":          srv.Journal() != nil,
				"journal_replayed":     replayed,
				"journal_replay_age_s": replayAge.Seconds(),
			}
			if j := srv.Journal(); j != nil {
				js := j.Stats()
				body["journal_size_bytes"] = js.TotalBytes
				body["journal_records"] = js.Records
				body["journal_unsynced"] = js.Unsynced
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(body)
		})
		msrv := &http.Server{Addr: *metricsAddr, Handler: mux}
		go func() {
			if err := msrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				lg.Printf("metrics: %v", err)
			}
		}()
		lg.Printf("metrics on http://%s/metrics", *metricsAddr)
	}
	pushDone := make(chan struct{})
	pushStop := make(chan struct{})
	if len(upstreams) > 0 {
		go func() {
			defer close(pushDone)
			ticker := time.NewTicker(*pushEvery)
			defer ticker.Stop()
			ship := func() {
				for _, n := range nodes {
					// One capture per table per tick, fanned out to every
					// upstream (Reliable retains the blob without
					// modifying it, so sharing is safe).
					blob, err := n.snapshot()
					if err != nil {
						lg.Printf("push: snapshot %s: %v", n.spec.name, err)
						continue
					}
					for _, up := range upstreams {
						if err := up.rel.ShipSnapshot(n.spec.name, *pushSource, blob); err != nil {
							lg.Printf("push %s: ship %s: %v", up.addr, n.spec.name, err)
						}
					}
				}
			}
			for {
				select {
				case <-ticker.C:
					ship()
				case <-pushStop:
					ship() // final capture so shutdown loses nothing
					return
				}
			}
		}()
	} else {
		close(pushDone)
	}

	if *ckptEvery <= 0 {
		*ckptEvery = 30 * time.Second
	}
	ckptDone := make(chan struct{})
	ckptStop := make(chan struct{})
	if *ckptDir != "" {
		go func() {
			defer close(ckptDone)
			ticker := time.NewTicker(*ckptEvery)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					if _, err := srv.WriteCheckpoints(*ckptDir); err != nil {
						lg.Printf("checkpoint: %v", err)
					}
				case <-ckptStop:
					return
				}
			}
		}()
	} else {
		close(ckptDone)
	}

	if *statsEvery > 0 {
		// The dump renders the same registry /metrics scrapes — server,
		// pool, table, checkpoint and per-upstream series included — so
		// the log path and the scrape path can never disagree.
		go func() {
			var buf bytes.Buffer
			for range time.Tick(*statsEvery) {
				buf.Reset()
				if err := reg.WriteValues(&buf); err != nil {
					lg.Printf("stats: %v", err)
					continue
				}
				lg.Printf("stats:\n%s", bytes.TrimRight(buf.Bytes(), "\n"))
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	lg.Printf("%s: draining", got)
	srv.Close() // stop accepting, drain in-flight frames
	if len(upstreams) > 0 {
		close(pushStop)
	}
	<-pushDone
	for _, up := range upstreams {
		// Deliver what is still queued (reconnecting if an upstream just
		// restarted), bounded so a dead upstream cannot wedge shutdown.
		if err := up.rel.Drain(15 * time.Second); err != nil {
			lg.Printf("push %s: %v", up.addr, err)
		}
		up.rel.Close()
	}
	if *ckptDir != "" {
		close(ckptStop)
		<-ckptDone
		// Final checkpoint after the drain: everything in-flight frames
		// ingested during shutdown makes it to disk (and the journal
		// rotates + prunes, so a clean shutdown leaves a near-empty tail
		// for the next boot to replay).
		if _, err := srv.WriteCheckpoints(*ckptDir); err != nil {
			lg.Printf("checkpoint: %v", err)
		}
	}
	for _, n := range nodes {
		n.close()
	}
	if jnl != nil {
		// Closed after the tables: their final evictions may still spill
		// records, and every acknowledged record must hit disk.
		if err := jnl.Close(); err != nil {
			lg.Printf("journal close: %v", err)
		}
	}
	st := srv.Stats()
	lg.Printf("done: served %d conns, %d frames, %d items", st.ConnsTotal, st.Frames, st.Items)
}

// register builds the table a spec describes, registers it, and
// returns its lifecycle hooks. With journaling on, evicted keys spill
// their final compact back into the server's remote aggregate (made
// durable through the journal first), so a TTL or max-keys eviction
// stops meaning silent deletion from rollups — without the journal the
// historical drop-on-evict behavior is preserved.
func register(srv *fcds.IngestServer, spec tableSpec, writers, param, maxKeys int, ttl time.Duration, pool *fcds.PropagatorPool, journaled bool, lg *log.Logger) (*node, error) {
	strCfg := fcds.TableConfig{Writers: writers, MaxKeys: maxKeys, TTL: ttl, Pool: pool}
	u64Cfg := fcds.TableU64Config{Writers: writers, MaxKeys: maxKeys, TTL: ttl, Pool: pool}
	if journaled {
		strCfg.OnEvict = func(key string, snapshot []byte) {
			if err := srv.SpillEvictString(spec.name, key, snapshot); err != nil {
				lg.Printf("evict spill %s: %v", spec.name, err)
			}
		}
		u64Cfg.OnEvict = func(key uint64, snapshot []byte) {
			if err := srv.SpillEvictU64(spec.name, key, snapshot); err != nil {
				lg.Printf("evict spill %s: %v", spec.name, err)
			}
		}
	}
	n := &node{spec: spec}
	var err error
	switch spec.family + "/" + spec.keyType {
	case "theta/str":
		t := fcds.NewThetaTable(fcds.ThetaTableConfig{Table: strCfg, K: param})
		n.keys, n.close = t.Keys, t.Close
		n.registerMetrics = func(reg *fcds.MetricsRegistry) { t.RegisterMetrics(reg, spec.name) }
		err = fcds.RegisterThetaTable(srv, spec.name, t)
	case "theta/u64":
		t := fcds.NewThetaTableU64(fcds.ThetaTableU64Config{Table: u64Cfg, K: param})
		n.keys, n.close = t.Keys, t.Close
		n.registerMetrics = func(reg *fcds.MetricsRegistry) { t.RegisterMetrics(reg, spec.name) }
		err = fcds.RegisterThetaTableU64(srv, spec.name, t)
	case "quantiles/str":
		t := fcds.NewQuantilesTable(fcds.QuantilesTableConfig{Table: strCfg, K: param})
		n.keys, n.close = t.Keys, t.Close
		n.registerMetrics = func(reg *fcds.MetricsRegistry) { t.RegisterMetrics(reg, spec.name) }
		err = fcds.RegisterQuantilesTable(srv, spec.name, t)
	case "quantiles/u64":
		t := fcds.NewQuantilesTableU64(fcds.QuantilesTableU64Config{Table: u64Cfg, K: param})
		n.keys, n.close = t.Keys, t.Close
		n.registerMetrics = func(reg *fcds.MetricsRegistry) { t.RegisterMetrics(reg, spec.name) }
		err = fcds.RegisterQuantilesTableU64(srv, spec.name, t)
	case "hll/str":
		t := fcds.NewHLLTable(fcds.HLLTableConfig{Table: strCfg, Precision: uint8(param)})
		n.keys, n.close = t.Keys, t.Close
		n.registerMetrics = func(reg *fcds.MetricsRegistry) { t.RegisterMetrics(reg, spec.name) }
		err = fcds.RegisterHLLTable(srv, spec.name, t)
	case "hll/u64":
		t := fcds.NewHLLTableU64(fcds.HLLTableU64Config{Table: u64Cfg, Precision: uint8(param)})
		n.keys, n.close = t.Keys, t.Close
		n.registerMetrics = func(reg *fcds.MetricsRegistry) { t.RegisterMetrics(reg, spec.name) }
		err = fcds.RegisterHLLTableU64(srv, spec.name, t)
	}
	if err != nil {
		return nil, err
	}
	// Ship through the server's own snapshot path: it quiesces the
	// server's writer slots, drains the table (a plain SnapshotBinary
	// would miss up to r acked-but-buffered updates per key) and folds
	// in any snapshots this node has itself received — so a mid-tier
	// node forwards downstream data instead of dropping it.
	n.snapshot = func() ([]byte, error) { return srv.SnapshotTable(spec.name) }
	return n, nil
}
