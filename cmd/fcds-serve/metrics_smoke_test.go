//go:build smoke

// Scrape smoke for the ops endpoint: one real fcds-serve process that
// pushes snapshots to itself, scraped over real HTTP — asserting the
// /metrics exposition carries the full family set with live traffic in
// the counters, and that /healthz reports the checkpoint state. The
// in-process tests cover each subsystem's registration; only a real
// process exercises all of them wired into one registry behind one
// listener.
//
//	go test -tags smoke -run MetricsEndpoint ./cmd/fcds-serve/
package main

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/fcds/fcds/internal/server/client"
)

// scrape fetches url and returns the response body, retrying until the
// deadline (the server binds its listeners asynchronously at startup).
func scrape(t *testing.T, url string, timeout time.Duration) string {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(url)
		if err == nil {
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr == nil && resp.StatusCode == http.StatusOK {
				return string(body)
			}
			err = rerr
		}
		if time.Now().After(deadline) {
			t.Fatalf("scrape %s: %v", url, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// parseExposition returns the set of `# TYPE`-declared families and a
// flat sample map (name{labels} -> value) from Prometheus text.
func parseExposition(t *testing.T, body string) (families map[string]bool, samples map[string]float64) {
	t.Helper()
	families = make(map[string]bool)
	samples = make(map[string]float64)
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			families[strings.Fields(rest)[0]] = true
			continue
		}
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("malformed value in %q: %v", line, err)
		}
		samples[line[:sp]] = v
	}
	return families, samples
}

func TestMetricsEndpointSmoke(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "fcds-serve")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	addr := reservePort(t)
	metricsAddr := reservePort(t)

	// One node pushing snapshots to itself: the single process exercises
	// server ingest, the reliable shipper, snapshot-push acceptance and
	// checkpointing — every registered subsystem sees traffic.
	cmd := exec.Command(bin,
		"-addr", addr,
		"-metrics-addr", metricsAddr,
		"-tables", "events=theta/str,lat=quantiles/str",
		"-push", addr,
		"-push-every", "150ms",
		"-push-source", "metrics-smoke",
		"-checkpoint-dir", t.TempDir(),
		"-checkpoint-every", "200ms",
		"-v")
	cmd.Stderr = procLog{t, "serve"}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cmd.Process.Kill() }()

	// Drive real ingest traffic through the wire path (retrying the
	// dial: the server binds its listener asynchronously at startup).
	var c *client.Client
	dialDeadline := time.Now().Add(15 * time.Second)
	for {
		var err error
		if c, err = client.Dial(addr, client.WithDialTimeout(time.Second)); err == nil {
			break
		}
		if time.Now().After(dialDeadline) {
			t.Fatalf("dial %s: %v", addr, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
	defer c.Close()
	keys := make([]string, 500)
	vals := make([]float64, 500)
	for i := range keys {
		keys[i] = "api"
		vals[i] = float64(i)
	}
	if err := c.IngestFloat("lat", keys, vals); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	// Wait for at least one full push + checkpoint cycle to land, then
	// scrape until the push-derived counters are visible.
	deadline := time.Now().Add(20 * time.Second)
	var families map[string]bool
	var samples map[string]float64
	for {
		body := scrape(t, "http://"+metricsAddr+"/metrics", 10*time.Second)
		families, samples = parseExposition(t, body)
		if samples[`fcds_server_snapshots_total`] > 0 &&
			samples[`fcds_client_delivered_total{upstream="`+addr+`"}`] > 0 &&
			samples[`fcds_server_has_checkpoint`] == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("push cycle never surfaced in /metrics; snapshots=%v delivered=%v has_checkpoint=%v",
				samples[`fcds_server_snapshots_total`],
				samples[`fcds_client_delivered_total{upstream="`+addr+`"}`],
				samples[`fcds_server_has_checkpoint`])
		}
		time.Sleep(100 * time.Millisecond)
	}

	if len(families) < 25 {
		names := make([]string, 0, len(families))
		for f := range families {
			names = append(names, f)
		}
		t.Fatalf("/metrics exposes %d families, want >= 25: %v", len(families), names)
	}
	// Core counters must be non-zero after the ingest + push cycle.
	for _, name := range []string{
		`fcds_server_connections_total`,
		`fcds_server_frames_total`,
		`fcds_server_items_total`,
		`fcds_server_checkpoints_total`,
		`fcds_server_table_items_total{table="lat"}`,
		`fcds_client_dials_total{upstream="` + addr + `"}`,
		`fcds_pool_workers`,
		`fcds_table_keys{table="lat"}`,
	} {
		if samples[name] <= 0 {
			t.Errorf("%s = %v, want > 0", name, samples[name])
		}
	}
	// Writer-pool families: the successor counter and idle gauge exist,
	// and the deprecated slot-waits family is still emitted — pinned at
	// 0 now that connection-pinned slots are gone.
	for _, fam := range []string{
		"fcds_server_writer_pool_waits_total",
		"fcds_server_writer_pool_idle",
		"fcds_server_writer_slot_waits_total",
	} {
		if !families[fam] {
			t.Errorf("family %s missing from /metrics", fam)
		}
	}
	if v, ok := samples[`fcds_server_writer_slot_waits_total{table="lat"}`]; !ok || v != 0 {
		t.Errorf(`fcds_server_writer_slot_waits_total{table="lat"} = %v (present=%v), want constant 0`, v, ok)
	}
	if v, ok := samples[`fcds_server_writer_pool_idle{table="lat"}`]; !ok || v <= 0 {
		t.Errorf(`fcds_server_writer_pool_idle{table="lat"} = %v (present=%v), want > 0 at rest`, v, ok)
	}

	// The per-source push-lag gauge appears once the first named push
	// is accepted, keyed by table and source.
	if _, ok := samples[`fcds_server_snapshot_push_age_seconds{source="metrics-smoke",table="lat"}`]; !ok {
		t.Error(`fcds_server_snapshot_push_age_seconds{source="metrics-smoke",table="lat"} missing`)
	}

	// /healthz mirrors the same registry state as structured JSON.
	var health map[string]any
	if err := json.Unmarshal([]byte(scrape(t, "http://"+metricsAddr+"/healthz", 5*time.Second)), &health); err != nil {
		t.Fatalf("healthz is not JSON: %v", err)
	}
	if hc, _ := health["has_checkpoint"].(bool); !hc {
		t.Errorf("healthz has_checkpoint = %v, want true", health["has_checkpoint"])
	}
	if n, _ := health["items"].(float64); n < 500 {
		t.Errorf("healthz items = %v, want >= 500", health["items"])
	}

	// No graceful-shutdown assertion here: a self-pushing node closes
	// its own ingest listener on SIGTERM before the shipper's final
	// drain, which can never deliver. The crash-restart smoke covers
	// graceful shutdown with a live upstream; the deferred Kill reaps
	// this process.
}
