//go:build smoke

// The smoke tag keeps this out of the ordinary test run: it builds the
// real binary and drives two fcds-serve processes over loopback TCP,
// SIGKILLs the aggregator mid-run and asserts the restart recovers —
// the one failure mode the in-process synctest suite cannot produce
// (an actual dead process, an actual checkpoint directory handoff).
//
//	go test -tags smoke -run CrashRestart ./cmd/fcds-serve/
package main

import (
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"github.com/fcds/fcds/internal/quantiles"
	"github.com/fcds/fcds/internal/server/client"
)

// reservePort grabs a free loopback port. Racy by nature (the port is
// released before the server binds it), which is fine for a smoke
// test.
func reservePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

type procLog struct{ t *testing.T; name string }

func (w procLog) Write(p []byte) (int, error) {
	w.t.Logf("[%s] %s", w.name, p)
	return len(p), nil
}

func TestCrashRestartSmoke(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "fcds-serve")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	aggAddr := reservePort(t)
	edgeAddr := reservePort(t)
	ckpt := t.TempDir()

	startAgg := func() *exec.Cmd {
		cmd := exec.Command(bin,
			"-addr", aggAddr,
			"-tables", "lat=quantiles/str",
			"-checkpoint-dir", ckpt,
			"-checkpoint-every", "200ms",
			"-v")
		cmd.Stderr = procLog{t, "agg"}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		return cmd
	}
	agg := startAgg()
	defer func() { _ = agg.Process.Kill() }()

	edge := exec.Command(bin,
		"-addr", edgeAddr,
		"-tables", "lat=quantiles/str",
		"-push", aggAddr,
		"-push-every", "150ms",
		"-push-source", "edge-smoke",
		"-dial-timeout", "2s",
		"-v")
	edge.Stderr = procLog{t, "edge"}
	if err := edge.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = edge.Process.Kill() }()

	dialRetry := func(addr string) *client.Client {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for {
			c, err := client.Dial(addr, client.WithDialTimeout(time.Second))
			if err == nil {
				return c
			}
			if time.Now().After(deadline) {
				t.Fatalf("dial %s: %v", addr, err)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
	ingestFloats := func(c *client.Client, lo, hi int) {
		t.Helper()
		keys := make([]string, 0, hi-lo)
		vals := make([]float64, 0, hi-lo)
		for v := lo; v < hi; v++ {
			keys = append(keys, "api")
			vals = append(vals, float64(v))
		}
		if err := c.IngestFloat("lat", keys, vals); err != nil {
			t.Fatal(err)
		}
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	waitN := func(want uint64, timeout time.Duration) {
		t.Helper()
		deadline := time.Now().Add(timeout)
		var last uint64
		for {
			// Redial each probe: the aggregator restarts mid-test.
			if c, err := client.Dial(aggAddr, client.WithDialTimeout(time.Second)); err == nil {
				if _, blob, err := c.Rollup("lat"); err == nil {
					if sk, err := quantiles.Unmarshal(blob); err == nil {
						last = sk.Snapshot().N()
					}
				}
				c.Close()
			}
			if last == want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("aggregator N = %d, want %d", last, want)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}

	// 1000 samples through the edge; the push loop ships them upstream.
	ec := dialRetry(edgeAddr)
	defer ec.Close()
	ingestFloats(ec, 0, 1000)
	waitN(1000, 20*time.Second)

	// 200 samples straight into the aggregator: these live only in its
	// memory and its checkpoints — the edge knows nothing about them,
	// so only checkpoint recovery can bring them back after the kill.
	ac := dialRetry(aggAddr)
	ingestFloats(ac, 100_000, 100_200)
	ac.Close()
	waitN(1200, 10*time.Second)
	time.Sleep(600 * time.Millisecond) // > 2 checkpoint intervals: the 1200 are on disk

	// SIGKILL: no drain, no final checkpoint, no goodbye.
	if err := agg.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = agg.Wait()

	// The edge keeps aggregating while its upstream is gone; the
	// reconnecting shipper queues the cumulative snapshot.
	ingestFloats(ec, 2000, 2500)

	// Restart the aggregator on the same checkpoint directory: it must
	// recover the 200 direct samples from disk, and the edge's
	// re-shipped cumulative snapshot (1500 samples) must REPLACE the
	// restored edge state, not merge with it.
	agg = startAgg()
	defer func() { _ = agg.Process.Kill() }()
	waitN(1700, 30*time.Second)

	// Graceful shutdown still works after all that.
	if err := edge.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := waitExit(edge, 15*time.Second); err != nil {
		t.Fatalf("edge shutdown: %v", err)
	}
	if err := agg.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := waitExit(agg, 15*time.Second); err != nil {
		t.Fatalf("aggregator shutdown: %v", err)
	}
}

// waitExit waits for a process to exit cleanly, with a deadline.
func waitExit(cmd *exec.Cmd, timeout time.Duration) error {
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(timeout):
		_ = cmd.Process.Signal(os.Kill)
		return <-done
	}
}
