// Command fcds-bench regenerates every table and figure of the paper's
// evaluation (Section 7) plus the Table 1 error analysis (Section 6).
//
// Usage:
//
//	fcds-bench <experiment> [flags]
//
// Experiments: figure1, figure5a, figure5b, figure6, figure7, figure8,
// table1, table2, quantiles-error, all.
//
// Output is TSV on stdout (one header line, then rows), matching the
// DataSketches characterization suite's SpeedProfile/AccuracyProfile
// schema where applicable. By default the sweeps are scaled to finish
// in minutes on a small machine; pass -full for the paper-scale
// parameters (hours).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	fcds "github.com/fcds/fcds"
	"github.com/fcds/fcds/internal/adversary"
	"github.com/fcds/fcds/internal/characterization"
	"github.com/fcds/fcds/internal/stream"
)

// scale selects an experiment's parameter tier: the default finishes
// in minutes, -full is paper-scale (hours), -smoke is a CI-sized run
// that keeps every curve and configuration of the default tier but
// shrinks stream sizes and trial counts — so a smoke report is
// point-for-point comparable (same curve/threads set) with a committed
// default-tier BENCH_*.json, which is what the -check gate relies on.
type scale struct {
	full, smoke bool
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	full := fs.Bool("full", false, "paper-scale parameters (much slower)")
	smoke := fs.Bool("smoke", false, "CI-sized run: same curves, tiny streams (overrides -full)")
	k := fs.Int("k", 4096, "global sketch nominal entries")
	jsonPath := fs.String("json", "", "also write results as JSON to this file (BENCH_*.json trajectory)")
	checkPath := fs.String("check", "", "compare this run's JSON report against a committed BENCH_*.json and fail on schema drift")
	timeout := fs.Duration("timeout", 20*time.Minute, "abort the run (exit 1) if the experiment exceeds this; 0 disables")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the whole experiment to this file (go tool pprof)")
	_ = fs.Parse(os.Args[2:])
	sc := scale{full: *full && !*smoke, smoke: *smoke}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fcds-bench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "fcds-bench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		// Stopped explicitly on every exit path below: os.Exit skips
		// defers, and a profile cut off mid-write is unreadable.
		defer pprof.StopCPUProfile()
	}
	stopProfile := func() {
		if *cpuProfile != "" {
			pprof.StopCPUProfile()
		}
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// Every experiment returns its JSON report (nil when the experiment
	// defines none); -json and -check are honoured uniformly here
	// rather than inside each experiment. The experiment runs under a
	// watchdog: a hung run fails with a diagnostic instead of stalling
	// the CI job until the job-level timeout reaps it.
	done := make(chan *benchReport, 1)
	go func() {
		var rep *benchReport
		switch cmd {
		case "batch":
			rep = batch(ctx, sc, *k)
		case "table":
			rep = tableExp(ctx, sc)
		case "pool":
			rep = poolExp(ctx, sc)
		case "window":
			rep = windowExp(ctx, sc)
		case "serve":
			rep = serveExp(ctx, sc)
		case "rollup":
			rep = rollupExp(ctx, sc)
		case "figure1":
			figure1(sc.full)
		case "figure5a":
			figure5(sc.full, 1.0, *k)
		case "figure5b":
			figure5(sc.full, 0.04, *k)
		case "figure6":
			figure6(sc.full, *k)
		case "figure7":
			figure7(sc.full, *k)
		case "figure8":
			figure8(sc.full, *k)
		case "table1":
			table1(sc.full)
		case "table2":
			table2(sc.full)
		case "quantiles-error":
			quantilesError(sc.full)
		case "sketches":
			sketches(sc.full)
		case "all":
			all(ctx, sc, *k)
		default:
			usage()
			os.Exit(2)
		}
		done <- rep
	}()
	var rep *benchReport
	select {
	case rep = <-done:
	case <-ctx.Done():
		fmt.Fprintf(os.Stderr, "fcds-bench: experiment %q did not finish within %s: %v\n",
			cmd, *timeout, ctx.Err())
		stopProfile()
		os.Exit(1)
	}
	if err := ctx.Err(); err != nil {
		// A cooperative cancellation mid-run returned a partial report;
		// never emit or gate on partial numbers.
		fmt.Fprintf(os.Stderr, "fcds-bench: experiment %q aborted: %v\n", cmd, err)
		stopProfile()
		os.Exit(1)
	}
	if *jsonPath != "" {
		if rep == nil || len(rep.Results) == 0 {
			// A trajectory file silently not written would make the next
			// comparison read stale numbers as current; fail loudly.
			fmt.Fprintf(os.Stderr,
				"fcds-bench: experiment %q produced no JSON report; -json %s not written\n",
				cmd, *jsonPath)
			stopProfile()
			os.Exit(1)
		}
		writeBenchJSON(*jsonPath, *rep)
	}
	if *checkPath != "" {
		if rep == nil || len(rep.Results) == 0 {
			fmt.Fprintf(os.Stderr,
				"fcds-bench: experiment %q produced no JSON report to check against %s\n",
				cmd, *checkPath)
			stopProfile()
			os.Exit(1)
		}
		if err := checkReport(*rep, *checkPath); err != nil {
			fmt.Fprintf(os.Stderr, "fcds-bench: check against %s FAILED:\n%v\n", *checkPath, err)
			stopProfile()
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "fcds-bench: check ok: %s matches this run's %d points\n",
			*checkPath, len(rep.Results))
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: fcds-bench <experiment> [-full|-smoke] [-k N] [-json FILE] [-check FILE] [-timeout D] [-cpuprofile FILE]
experiments:
  batch            batched vs per-item ingestion throughput (the batch pipeline)
  table            keyed multi-tenant tables: zipfian keys, shared propagator pool
  pool             propagator pool: throughput and steal counts vs worker count
  window           sliding-window keyed tables: zipfian keys, rotating epochs vs plain tables
  serve            network ingest server: loopback throughput vs connection count
  rollup           parallel read path: whole-table rollup + snapshot-append vs fan-out degree
  figure1          scalability: concurrent vs lock-based, update-only
  figure5a         accuracy pitchfork, no eager propagation (e=1.0)
  figure5b         accuracy pitchfork, eager propagation (e=0.04)
  figure6          write-only throughput vs stream size
  figure7          mixed workload: writers + background readers
  figure8          eager vs no-eager speedup
  table1           Θ error analysis (adversaries; closed-form/numerical/MC)
  table2           throughput/accuracy tradeoff vs k
  quantiles-error  §6.2 relaxed quantiles bound vs attack
  sketches         Θ vs Quantiles vs HLL under the framework (extension)
  all              run everything (scaled)`)
}

func all(ctx context.Context, sc scale, k int) {
	for _, f := range []func(){
		func() { table1(sc.full) },
		func() { batch(ctx, sc, k) },
		func() { tableExp(ctx, sc) },
		func() { poolExp(ctx, sc) },
		func() { windowExp(ctx, sc) },
		func() { serveExp(ctx, sc) },
		func() { rollupExp(ctx, sc) },
		func() { figure1(sc.full) },
		func() { figure5(sc.full, 1.0, k) },
		func() { figure5(sc.full, 0.04, k) },
		func() { figure6(sc.full, k) },
		func() { figure7(sc.full, k) },
		func() { figure8(sc.full, k) },
		func() { table2(sc.full) },
		func() { quantilesError(sc.full) },
	} {
		if ctx.Err() != nil {
			return
		}
		f()
		fmt.Println()
	}
}

// benchRecord is one measured point of a JSON bench report.
type benchRecord struct {
	Curve   string  `json:"curve"`
	Threads int     `json:"threads"`
	Chunk   int     `json:"chunk,omitempty"` // 0 = per-item ingestion
	MopsSec float64 `json:"mops_sec"`
	// Keyed-table experiments: distinct key count and the goroutine
	// count observed mid-run (pinning pool-not-per-key propagation).
	Keys       int `json:"keys,omitempty"`
	Goroutines int `json:"goroutines,omitempty"`
	// Pool experiment: cross-queue steals observed during the best
	// trial (the work-stealing half of the shard-affine scheduler).
	Steals int64 `json:"steals,omitempty"`
	// Counters is the subsystem metrics-registry snapshot from the best
	// trial (name{labels} -> value), attributing the point's throughput
	// to pool/table/window/server internals: evictions, steals, writer
	// cache hits, slot waits, and so on. Keys vary by experiment;
	// encoding/json drops unknown fields on decode, so adding families
	// never breaks -check against an older committed trajectory.
	Counters map[string]float64 `json:"counters,omitempty"`
}

// benchReport is the schema of the BENCH_*.json trajectory files: one
// self-describing JSON document per experiment run, so successive PRs
// can be compared point for point.
type benchReport struct {
	Experiment string        `json:"experiment"`
	Unix       int64         `json:"unix"`
	GoMaxProcs int           `json:"gomaxprocs"`
	N          uint64        `json:"n"`
	Trials     int           `json:"trials"`
	K          int           `json:"k"`
	Results    []benchRecord `json:"results"`
}

// writeBenchJSON emits a benchReport to path (the bench JSON emitter).
func writeBenchJSON(path string, rep benchReport) {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "fcds-bench: marshal json:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "fcds-bench: write json:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "wrote", path)
}

// batch: the batched ingestion pipeline vs the per-item path, across
// writer counts and chunk sizes.
func batch(ctx context.Context, sc scale, k int) *benchReport {
	n := uint64(1 << 21)
	trials := 3
	writers := []int{1, 2, 4}
	chunks := []int{64, 256, 4096}
	if sc.full {
		n = 1 << 24
		trials = 16
		writers = []int{1, 2, 4, 8, 12}
	}
	if sc.smoke {
		n = 1 << 17
		trials = 1
	}
	fmt.Printf("# Batch pipeline: batched vs per-item ingestion, k=%d, e=1.0, b=64\n", k)
	fmt.Println("curve\tthreads\tchunk\tMops_sec")
	rep := benchReport{
		Experiment: "batch", Unix: time.Now().Unix(),
		GoMaxProcs: runtime.GOMAXPROCS(0), N: n, Trials: trials, K: k,
	}
	profile := func(curve string, chunk int, build func(th int) characterization.Runner) {
		if ctx.Err() != nil {
			return
		}
		pts := characterization.ScalabilityProfile(characterization.ScalabilityConfig{
			Threads: writers, N: n, Trials: trials, Build: build,
		})
		for _, p := range pts {
			fmt.Printf("%s\t%d\t%d\t%.2f\n", curve, p.Threads, chunk, p.MopsSec)
			rep.Results = append(rep.Results, benchRecord{
				Curve: curve, Threads: p.Threads, Chunk: chunk, MopsSec: p.MopsSec,
			})
		}
	}
	profile("item", 0, func(th int) characterization.Runner {
		return &characterization.ConcurrentThetaRunner{
			K: k, Writers: th, MaxError: 1.0, BufferSize: 64,
		}
	})
	for _, chunk := range chunks {
		profile(fmt.Sprintf("batch%d", chunk), chunk, func(th int) characterization.Runner {
			return &characterization.ConcurrentThetaBatchRunner{
				K: k, Writers: th, MaxError: 1.0, BufferSize: 64, ChunkSize: chunk,
			}
		})
	}
	return &rep
}

// tableExp: keyed multi-tenant Θ tables under a zipfian key draw —
// throughput and goroutine count across key-space sizes and ingest
// goroutine counts, all key sketches propagated by one shared pool.
// The zipfian key/value streams are pregenerated outside the timed
// section, so the curves measure table ingestion, not math.Log.
func tableExp(ctx context.Context, sc scale) *benchReport {
	n := uint64(1 << 22)
	trials := 3
	keySpaces := []int{1_000, 10_000, 100_000}
	writerCounts := []int{1, 2, 4, 8}
	if sc.full {
		n = 1 << 23
		trials = 5
		keySpaces = []int{1_000, 10_000, 100_000, 1_000_000}
		writerCounts = []int{1, 2, 4, 8, 12}
	}
	if sc.smoke {
		n = 1 << 18
		trials = 1
	}
	const chunk = 2048
	fmt.Println("# Table: keyed Θ tables, zipfian keys (s=1.2), K=256 per key, shared propagator pool")
	fmt.Println("curve\tthreads\tkeys\tgoroutines\tMops_sec")
	rep := benchReport{
		Experiment: "table", Unix: time.Now().Unix(),
		GoMaxProcs: runtime.GOMAXPROCS(0), N: n, Trials: trials, K: 256,
	}
	// Interleave configurations within each trial round — and walk the
	// configuration list in alternating (serpentine) order across
	// rounds — so slow drifts of the host (thermal, noisy neighbours)
	// hit every configuration evenly instead of systematically
	// favouring whichever end of the sweep runs first.
	type cfgKey = [2]int
	var order []cfgKey
	for _, keys := range keySpaces {
		for _, writers := range writerCounts {
			order = append(order, cfgKey{keys, writers})
		}
	}
	best := make(map[cfgKey]float64)
	gor := make(map[cfgKey]int)
	ctrs := make(map[cfgKey]map[string]float64)
	for trial := 0; trial < trials; trial++ {
		for i := range order {
			if ctx.Err() != nil {
				return nil
			}
			k := order[i]
			if trial%2 == 1 {
				k = order[len(order)-1-i]
			}
			mops, g, vals := runTableTrial(n, k[0], k[1], writerCounts[len(writerCounts)-1], chunk, uint64(trial))
			if mops > best[k] {
				best[k] = mops
				ctrs[k] = vals
			}
			gor[k] = g
		}
	}
	for _, keys := range keySpaces {
		for _, writers := range writerCounts {
			k := [2]int{keys, writers}
			curve := fmt.Sprintf("keys%d", keys)
			fmt.Printf("%s\t%d\t%d\t%d\t%.2f\n", curve, writers, keys, gor[k], best[k])
			rep.Results = append(rep.Results, benchRecord{
				Curve: curve, Threads: writers, Chunk: chunk,
				MopsSec: best[k], Keys: keys, Goroutines: gor[k],
				Counters: ctrs[k],
			})
		}
	}
	return &rep
}

// runTableTrial ingests n zipfian-keyed updates from `writers` ingest
// goroutines (goroutine g drives handle g of a table configured with
// maxWriters handles, so the per-key structure and relaxation bound
// are identical across every point of a curve — the sweep varies
// parallelism, nothing else) and returns Mops/sec plus the goroutine
// count observed at the end of ingestion (before Close), which stays
// O(GOMAXPROCS) however many keys are live. Key and value streams are
// generated before the clock starts. The returned counters map is the
// trial's table-subsystem registry snapshot (shard lookups, writer
// cache hits, promotions, evictions) for bench attribution.
func runTableTrial(n uint64, keys, writers, maxWriters, chunk int, seed uint64) (mops float64, goroutines int, counters map[string]float64) {
	tab := fcds.NewThetaTableU64(fcds.ThetaTableU64Config{
		Table: fcds.TableU64Config{Writers: maxWriters, Shards: 1024},
	})
	defer tab.Close()
	reg := fcds.NewMetricsRegistry()
	tab.RegisterMetrics(reg, "bench")
	parts := stream.Partition(n, writers)
	allKs := make([][]uint64, writers)
	allVs := make([][]uint64, writers)
	for wi := 0; wi < writers; wi++ {
		z := stream.NewZipf(uint64(keys), 1.2, seed*1000+uint64(wi)+1)
		vals := stream.NewScrambled(parts[wi].Start)
		ks := make([]uint64, parts[wi].Count)
		vs := make([]uint64, parts[wi].Count)
		for i := range ks {
			ks[i] = z.Next()
			vs[i] = vals.Next()
		}
		allKs[wi], allVs[wi] = ks, vs
	}
	var wg sync.WaitGroup
	start := time.Now()
	for wi := 0; wi < writers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			w := tab.Writer(wi)
			ks, vs := allKs[wi], allVs[wi]
			for off := 0; off < len(ks); off += chunk {
				end := off + chunk
				if end > len(ks) {
					end = len(ks)
				}
				w.UpdateKeyedBatch(ks[off:end], vs[off:end])
			}
		}(wi)
	}
	wg.Wait()
	goroutines = runtime.NumGoroutine()
	elapsed := time.Since(start)
	return float64(n) / 1e6 / elapsed.Seconds(), goroutines, reg.Values()
}

// poolExp: the propagator pool in isolation — many small sketches on
// one shared pool, ingestion from a fixed set of goroutines, across
// pool worker counts. Reports propagation-bound throughput and the
// cross-queue steal count of the shard-affine scheduler (affine
// submission keeps a sketch on one worker; steals kick in when a
// worker backs up).
func poolExp(ctx context.Context, sc scale) *benchReport {
	n := uint64(1 << 21)
	trials := 3
	workerCounts := []int{1, 2, 4, 8}
	if sc.full {
		n = 1 << 23
		trials = 5
		workerCounts = []int{1, 2, 4, 8, 16}
	}
	if sc.smoke {
		n = 1 << 18
		trials = 1
	}
	const sketches = 64
	const ingesters = 4
	const chunk = 512
	fmt.Println("# Pool: 64 pooled Θ sketches (K=256, b=4), 4 ingest goroutines, propagation throughput vs pool workers")
	fmt.Println("curve\tworkers\tgoroutines\tsteals\tMops_sec")
	rep := benchReport{
		Experiment: "pool", Unix: time.Now().Unix(),
		GoMaxProcs: runtime.GOMAXPROCS(0), N: n, Trials: trials, K: 256,
	}
	best := make(map[int]float64)
	steals := make(map[int]int64)
	ctrs := make(map[int]map[string]float64)
	for trial := 0; trial < trials; trial++ {
		for _, workers := range workerCounts {
			if ctx.Err() != nil {
				return nil
			}
			mops, st, vals := runPoolTrial(n, workers, sketches, ingesters, chunk, uint64(trial))
			if mops > best[workers] {
				best[workers] = mops
				steals[workers] = st
				ctrs[workers] = vals
			}
		}
	}
	for _, workers := range workerCounts {
		fmt.Printf("sketches%d\t%d\t%d\t%d\t%.2f\n", sketches, workers, ingesters, steals[workers], best[workers])
		rep.Results = append(rep.Results, benchRecord{
			Curve: fmt.Sprintf("sketches%d", sketches), Threads: workers, Chunk: chunk,
			MopsSec: best[workers], Goroutines: ingesters, Steals: steals[workers],
			Counters: ctrs[workers],
		})
	}
	return &rep
}

// runPoolTrial drives `sketches` pooled concurrent Θ sketches from
// `ingesters` goroutines (goroutine g owns writer slot g of every
// sketch, rotating over its sketch subset batch by batch) and returns
// Mops/sec plus the pool's cross-queue steal count for the run. The
// tiny b keeps the workload handoff-dense, so the pool's scheduling —
// not the sketch math — dominates. The returned counters map is the
// trial's pool-subsystem registry snapshot (per-worker runs, steals,
// wake tokens, queue depths) for bench attribution.
func runPoolTrial(n uint64, workers, sketches, ingesters, chunk int, seed uint64) (mops float64, steals int64, counters map[string]float64) {
	pool := fcds.NewPropagatorPool(workers)
	defer pool.Close()
	reg := fcds.NewMetricsRegistry()
	fcds.RegisterPoolMetrics(reg, pool)
	sks := make([]*fcds.ConcurrentTheta, sketches)
	for i := range sks {
		sks[i] = fcds.NewConcurrentTheta(fcds.ConcurrentThetaConfig{
			K: 256, Writers: ingesters, MaxError: 1, BufferSize: 4, Pool: pool,
		})
	}
	defer func() {
		for _, s := range sks {
			s.Close()
		}
	}()
	parts := stream.Partition(n, ingesters)
	steals0 := pool.Steals()
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < ingesters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			vals := stream.NewScrambled(seed*1e9 + parts[g].Start)
			vs := make([]uint64, chunk)
			si := g
			for sent := uint64(0); sent < parts[g].Count; sent += uint64(chunk) {
				m := uint64(chunk)
				if rem := parts[g].Count - sent; rem < m {
					m = rem
				}
				for i := uint64(0); i < m; i++ {
					vs[i] = vals.Next()
				}
				sks[si%sketches].Writer(g).UpdateUint64Batch(vs[:m])
				si++
			}
			for i := 0; i < sketches; i++ {
				sks[i].Writer(g).Flush()
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	return float64(n) / 1e6 / elapsed.Seconds(), pool.Steals() - steals0, reg.Values()
}

// windowExp: sliding-window keyed Θ tables under the same zipfian draw
// as the table experiment, rotating through 16 epochs per trial, with
// the plain (non-windowed) keyed table as the in-run baseline — the
// epoch-ring overhead is the gap between the two curves.
func windowExp(ctx context.Context, sc scale) *benchReport {
	n := uint64(1 << 21)
	trials := 2
	keySpaces := []int{1_000, 100_000}
	writerCounts := []int{1, 4}
	if sc.full {
		n = 1 << 23
		trials = 5
		keySpaces = []int{1_000, 100_000, 1_000_000}
		writerCounts = []int{1, 4, 8, 12}
	}
	if sc.smoke {
		n = 1 << 17
		trials = 1
	}
	const chunk = 512
	const rotations = 16
	fmt.Println("# Window: sliding-window keyed Θ tables, zipfian keys (s=1.2), 6-slot epoch ring, 16 rotations/trial")
	fmt.Println("curve\tthreads\tkeys\tgoroutines\tMops_sec")
	rep := benchReport{
		Experiment: "window", Unix: time.Now().Unix(),
		GoMaxProcs: runtime.GOMAXPROCS(0), N: n, Trials: trials, K: 256,
	}
	record := func(curve string, writers, keys, goroutines int, mops float64, counters map[string]float64) {
		fmt.Printf("%s\t%d\t%d\t%d\t%.2f\n", curve, writers, keys, goroutines, mops)
		rep.Results = append(rep.Results, benchRecord{
			Curve: curve, Threads: writers, Chunk: chunk,
			MopsSec: mops, Keys: keys, Goroutines: goroutines,
			Counters: counters,
		})
	}
	for _, keys := range keySpaces {
		for _, writers := range writerCounts {
			var bestW, bestP float64
			var gor int
			var ctrW, ctrP map[string]float64
			for trial := 0; trial < trials; trial++ {
				if ctx.Err() != nil {
					return nil
				}
				mops, g, vals := runWindowTrial(n, keys, writers, chunk, rotations, uint64(trial))
				if mops > bestW {
					bestW = mops
					ctrW = vals
				}
				gor = g
				if mops, _, vals := runTableTrial(n, keys, writers, writers, chunk, uint64(trial)); mops > bestP {
					bestP = mops
					ctrP = vals
				}
			}
			record(fmt.Sprintf("windowed-keys%d", keys), writers, keys, gor, bestW, ctrW)
			record(fmt.Sprintf("plain-keys%d", keys), writers, keys, 0, bestP, ctrP)
		}
	}
	return &rep
}

// runWindowTrial ingests n zipfian-keyed updates into a 6-slot
// windowed table; writer 0 rotates the ring `rotations` times evenly
// through its share of the stream, so every trial exercises epoch
// sealing (drain + snapshot-spill) while the other writers keep
// ingesting. The returned counters map is the trial's window-subsystem
// registry snapshot (epoch, rotations, sealed rebuilds, expiries) for
// bench attribution.
func runWindowTrial(n uint64, keys, writers, chunk, rotations int, seed uint64) (mops float64, goroutines int, counters map[string]float64) {
	wt := fcds.NewWindowedThetaTableU64(
		fcds.ThetaTableU64Config{
			Table: fcds.TableU64Config{Writers: writers, Shards: 1024},
		},
		fcds.WindowConfig{Slots: 6, Width: time.Hour},
	)
	defer wt.Close()
	reg := fcds.NewMetricsRegistry()
	wt.RegisterMetrics(reg, "bench")
	parts := stream.Partition(n, writers)
	var wg sync.WaitGroup
	start := time.Now()
	for wi := 0; wi < writers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			w := wt.Writer(wi)
			z := stream.NewZipf(uint64(keys), 1.2, seed*1000+uint64(wi)+1)
			vals := stream.NewScrambled(parts[wi].Start)
			ks := make([]uint64, chunk)
			vs := make([]uint64, chunk)
			batches := uint64(0)
			rotEvery := parts[wi].Count/uint64(chunk)/uint64(rotations) + 1
			for sent := uint64(0); sent < parts[wi].Count; sent += uint64(chunk) {
				m := uint64(chunk)
				if rem := parts[wi].Count - sent; rem < m {
					m = rem
				}
				for i := uint64(0); i < m; i++ {
					ks[i] = z.Next()
					vs[i] = vals.Next()
				}
				w.UpdateKeyedBatch(ks[:m], vs[:m])
				if batches++; wi == 0 && batches%rotEvery == 0 {
					wt.Rotate()
				}
			}
		}(wi)
	}
	wg.Wait()
	goroutines = runtime.NumGoroutine()
	elapsed := time.Since(start)
	return float64(n) / 1e6 / elapsed.Seconds(), goroutines, reg.Values()
}

// serveExp: the network ingest server over loopback TCP — keyed Θ
// ingest throughput vs client connection count. Each connection runs
// the client's batched asynchronous ingest path (pipelined acks) into
// one shared uint64-keyed table; the curve exposes the wire+framing
// overhead against the in-process `table` experiment and how it
// amortises across connections.
func serveExp(ctx context.Context, sc scale) *benchReport {
	n := uint64(1 << 20)
	trials := 3
	connCounts := []int{1, 2, 4, 8}
	if sc.full {
		n = 1 << 22
		trials = 5
	}
	if sc.smoke {
		n = 1 << 16
		trials = 1
	}
	const keys = 10_000
	const chunk = 2048
	fmt.Println("# Serve: loopback network ingest, keyed Θ table (K=256), zipfian keys (s=1.2), batched client pipeline")
	fmt.Println("curve\tconns\tkeys\tMops_sec")
	rep := benchReport{
		Experiment: "serve", Unix: time.Now().Unix(),
		GoMaxProcs: runtime.GOMAXPROCS(0), N: n, Trials: trials, K: 256,
	}
	best := make(map[int]float64)
	ctrs := make(map[int]map[string]float64)
	for trial := 0; trial < trials; trial++ {
		for _, conns := range connCounts {
			if ctx.Err() != nil {
				return nil
			}
			mops, vals, err := runServeTrial(n, conns, keys, chunk, uint64(trial))
			if err != nil {
				fmt.Fprintln(os.Stderr, "fcds-bench: serve:", err)
				os.Exit(1)
			}
			if mops > best[conns] {
				best[conns] = mops
				ctrs[conns] = vals
			}
		}
	}
	for _, conns := range connCounts {
		fmt.Printf("conns\t%d\t%d\t%.2f\n", conns, keys, best[conns])
		rep.Results = append(rep.Results, benchRecord{
			Curve: "conns", Threads: conns, Chunk: chunk,
			MopsSec: best[conns], Keys: keys,
			Counters: ctrs[conns],
		})
	}
	return &rep
}

// runServeTrial stands up a loopback ingest server over one keyed Θ
// table and drives n zipfian-keyed updates through `conns` client
// connections (pregenerated streams; the clock covers dial-to-flush).
// The returned counters map snapshots the server and table registries
// after the flush (per-table frames/items/bytes, writer-slot waits,
// connection totals) for bench attribution.
func runServeTrial(n uint64, conns, keys, chunk int, seed uint64) (float64, map[string]float64, error) {
	tab := fcds.NewThetaTableU64(fcds.ThetaTableU64Config{
		Table: fcds.TableU64Config{Writers: conns, Shards: 1024},
	})
	defer tab.Close()
	srv, err := fcds.Serve("127.0.0.1:0", fcds.IngestServerConfig{})
	if err != nil {
		return 0, nil, err
	}
	defer srv.Close()
	if err := fcds.RegisterThetaTableU64(srv, "bench", tab); err != nil {
		return 0, nil, err
	}
	reg := fcds.NewMetricsRegistry()
	srv.RegisterMetrics(reg)
	tab.RegisterMetrics(reg, "bench")
	addr := srv.Addr().String()

	parts := stream.Partition(n, conns)
	allKs := make([][]uint64, conns)
	allVs := make([][]uint64, conns)
	for ci := 0; ci < conns; ci++ {
		z := stream.NewZipf(uint64(keys), 1.2, seed*1000+uint64(ci)+1)
		vals := stream.NewScrambled(parts[ci].Start)
		ks := make([]uint64, parts[ci].Count)
		vs := make([]uint64, parts[ci].Count)
		for i := range ks {
			ks[i] = z.Next()
			vs[i] = vals.Next()
		}
		allKs[ci], allVs[ci] = ks, vs
	}

	errs := make(chan error, conns)
	var wg sync.WaitGroup
	start := time.Now()
	for ci := 0; ci < conns; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := fcds.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			ks, vs := allKs[ci], allVs[ci]
			for off := 0; off < len(ks); off += chunk {
				end := min(off+chunk, len(ks))
				if err := c.IngestU64("bench", ks[off:end], vs[off:end]); err != nil {
					errs <- err
					return
				}
			}
			if err := c.Flush(); err != nil {
				errs <- err
			}
		}(ci)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return 0, nil, err
	default:
	}
	return float64(n) / 1e6 / elapsed.Seconds(), reg.Values(), nil
}

// rollupExp: the parallel read path — whole-table rollup and
// streaming snapshot-append throughput across read fan-out degrees
// and key counts. The table is populated once per configuration and
// quiesced; the timed section is pure read-path work (collect,
// per-key compaction, merge/serialize), so degree scaling here is the
// direct measure of the shard-fanned rollup pipeline. Throughput is
// per-key compaction ops (keys × passes / second), which is
// comparable across key counts.
func rollupExp(ctx context.Context, sc scale) *benchReport {
	trials := 3
	keySpaces := []int{1_000, 100_000}
	degrees := []int{1, 2, 4}
	itemsPerKey := 8
	opsTarget := 2_000_000
	if sc.full {
		trials = 5
		opsTarget = 8_000_000
	}
	if sc.smoke {
		trials = 1
		opsTarget = 100_000
		itemsPerKey = 2
	}
	fmt.Println("# Rollup: parallel read path — whole-table rollup and snapshot-append vs read fan-out degree, keyed Θ (K=256)")
	fmt.Println("curve\tdegree\tkeys\tMops_sec")
	rep := benchReport{
		Experiment: "rollup", Unix: time.Now().Unix(),
		GoMaxProcs: runtime.GOMAXPROCS(0), N: uint64(opsTarget), Trials: trials, K: 256,
	}
	for _, keys := range keySpaces {
		iters := opsTarget / keys
		if iters < 1 {
			iters = 1
		}
		for _, degree := range degrees {
			if ctx.Err() != nil {
				return nil
			}
			rollMops, snapMops, ctrs := runRollupTrials(keys, degree, itemsPerKey, iters, trials)
			fmt.Printf("rollup-keys%d\t%d\t%d\t%.2f\n", keys, degree, keys, rollMops)
			fmt.Printf("snapshot-keys%d\t%d\t%d\t%.2f\n", keys, degree, keys, snapMops)
			rep.Results = append(rep.Results,
				benchRecord{
					Curve: fmt.Sprintf("rollup-keys%d", keys), Threads: degree,
					MopsSec: rollMops, Keys: keys, Counters: ctrs,
				},
				benchRecord{
					Curve: fmt.Sprintf("snapshot-keys%d", keys), Threads: degree,
					MopsSec: snapMops, Keys: keys,
				})
		}
	}
	return &rep
}

// runRollupTrials builds one quiesced keyed Θ table with the given
// read fan-out degree, then times `trials` rounds of `iters`
// whole-table rollups and snapshot-appends (best round wins, the
// snapshot buffer is reused across passes so the steady state is
// allocation-free on the caller side). Returns per-key compaction
// Mops for each path plus the table-subsystem registry snapshot.
func runRollupTrials(keys, degree, itemsPerKey, iters, trials int) (rollMops, snapMops float64, counters map[string]float64) {
	tab := fcds.NewThetaTableU64(fcds.ThetaTableU64Config{
		Table: fcds.TableU64Config{Writers: 1, Shards: 1024, ReadParallelism: degree},
	})
	defer tab.Close()
	reg := fcds.NewMetricsRegistry()
	tab.RegisterMetrics(reg, "bench")
	const chunk = 2048
	w := tab.Writer(0)
	ks := make([]uint64, 0, chunk)
	vs := make([]uint64, 0, chunk)
	vals := stream.NewScrambled(uint64(keys))
	for k := 0; k < keys; k++ {
		for i := 0; i < itemsPerKey; i++ {
			ks = append(ks, uint64(k))
			vs = append(vs, vals.Next())
			if len(ks) == chunk {
				w.UpdateKeyedBatch(ks, vs)
				ks, vs = ks[:0], vs[:0]
			}
		}
	}
	if len(ks) > 0 {
		w.UpdateKeyedBatch(ks, vs)
	}
	tab.Drain()

	ops := float64(keys) * float64(iters) / 1e6
	var buf []byte
	for trial := 0; trial < trials; trial++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			tab.Rollup()
		}
		if mops := ops / time.Since(start).Seconds(); mops > rollMops {
			rollMops = mops
		}
		start = time.Now()
		for i := 0; i < iters; i++ {
			out, err := tab.SnapshotAppend(buf[:0])
			if err != nil {
				fmt.Fprintln(os.Stderr, "fcds-bench: rollup: snapshot-append:", err)
				os.Exit(1)
			}
			buf = out
		}
		if mops := ops / time.Since(start).Seconds(); mops > snapMops {
			snapMops = mops
		}
	}
	return rollMops, snapMops, reg.Values()
}

// checkReport is the bench-JSON regression gate: it compares this
// run's report against a committed BENCH_*.json and fails on schema
// drift (experiment renamed, curve/threads point set changed), missing
// required fields, or zero-throughput points on either side — so CI
// catches both a broken emitter and a stale committed trajectory
// before a human compares numbers point for point.
func checkReport(fresh benchReport, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var committed benchReport
	if err := json.Unmarshal(data, &committed); err != nil {
		return fmt.Errorf("committed file is not a bench report: %w", err)
	}
	validate := func(who string, rep benchReport) error {
		if rep.Experiment == "" || rep.GoMaxProcs <= 0 || rep.N == 0 || rep.Trials <= 0 {
			return fmt.Errorf("%s report missing required fields (experiment=%q gomaxprocs=%d n=%d trials=%d)",
				who, rep.Experiment, rep.GoMaxProcs, rep.N, rep.Trials)
		}
		if len(rep.Results) == 0 {
			return fmt.Errorf("%s report has no results", who)
		}
		for _, r := range rep.Results {
			if r.Curve == "" || r.Threads <= 0 {
				return fmt.Errorf("%s report has a malformed point %+v", who, r)
			}
			if r.MopsSec <= 0 {
				return fmt.Errorf("%s report has zero ops at curve %q threads %d", who, r.Curve, r.Threads)
			}
		}
		return nil
	}
	if err := validate("fresh", fresh); err != nil {
		return err
	}
	if err := validate("committed", committed); err != nil {
		return err
	}
	if fresh.Experiment != committed.Experiment {
		return fmt.Errorf("experiment drift: fresh %q, committed %q", fresh.Experiment, committed.Experiment)
	}
	type point struct {
		curve   string
		threads int
	}
	set := func(rep benchReport) map[point]bool {
		m := make(map[point]bool, len(rep.Results))
		for _, r := range rep.Results {
			m[point{r.Curve, r.Threads}] = true
		}
		return m
	}
	fs, cs := set(fresh), set(committed)
	var drift []string
	for p := range fs {
		if !cs[p] {
			drift = append(drift, fmt.Sprintf("point %s/%d produced by this build is missing from %s", p.curve, p.threads, path))
		}
	}
	for p := range cs {
		if !fs[p] {
			drift = append(drift, fmt.Sprintf("point %s/%d in %s is no longer produced by this build", p.curve, p.threads, path))
		}
	}
	if len(drift) > 0 {
		msg := drift[0]
		for _, d := range drift[1:] {
			msg += "\n" + d
		}
		return fmt.Errorf("curve drift:\n%s", msg)
	}
	return nil
}

// figure1: scalability of concurrent vs lock-based Θ sketch, b=1.
func figure1(full bool) {
	n := uint64(1 << 21)
	trials := 3
	threads := []int{1, 2, 4, 8}
	if full {
		n = 1 << 24
		trials = 16
		threads = []int{1, 2, 4, 8, 12, 16, 24, 32}
	}
	fmt.Println("# Figure 1: update-only scalability, k=4096, b=1, concurrent vs lock-based")
	fmt.Println("experiment\tthreads\tMops_sec")
	conc := characterization.ScalabilityProfile(characterization.ScalabilityConfig{
		Threads: threads, N: n, Trials: trials,
		Build: func(th int) characterization.Runner {
			return &characterization.ConcurrentThetaRunner{
				K: 4096, Writers: th, MaxError: 1.0, BufferSize: 1,
			}
		},
	})
	for _, p := range conc {
		fmt.Printf("concurrent\t%d\t%.2f\n", p.Threads, p.MopsSec)
	}
	lock := characterization.ScalabilityProfile(characterization.ScalabilityConfig{
		Threads: threads, N: n, Trials: trials,
		Build: func(th int) characterization.Runner {
			return &characterization.LockThetaRunner{K: 4096, Threads: th}
		},
	})
	for _, p := range lock {
		fmt.Printf("lock-based\t%d\t%.2f\n", p.Threads, p.MopsSec)
	}
}

// figure5: accuracy pitchfork (5a: e=1.0 no eager, 5b: e=0.04).
func figure5(full bool, e float64, k int) {
	cfg := characterization.AccuracyConfig{
		MinLgU: 7, MaxLgU: 17, PPO: 2,
		Trials: characterization.TaperedTrials(256, 16, 1<<9, 1<<17),
	}
	if full {
		cfg.MaxLgU = 23
		cfg.PPO = 4
		cfg.Trials = characterization.TaperedTrials(4096, 64, 1<<10, 1<<23)
	}
	label := "5b (eager, e=0.04)"
	if e >= 1 {
		label = "5a (no eager, e=1.0)"
	}
	fmt.Printf("# Figure %s: concurrent Θ accuracy pitchfork, k=%d\n", label, k)
	fmt.Println("InU\tTrials\tMeanRE\tQ01\tQ25\tMedian\tQ75\tQ99")
	pts := characterization.AccuracyProfile(
		&characterization.ConcurrentThetaAccuracy{K: k, MaxError: e}, cfg)
	for _, p := range pts {
		fmt.Printf("%d\t%d\t%.4f\t%.4f\t%.4f\t%.4f\t%.4f\t%.4f\n",
			p.InU, p.Trials, p.Mean, p.Q01, p.Q25, p.Median, p.Q75, p.Q99)
	}
}

func speedCfg(full bool) characterization.SpeedConfig {
	cfg := characterization.SpeedConfig{
		MinLgU: 5, MaxLgU: 20, PPO: 2,
		Trials: characterization.TaperedTrials(64, 2, 1<<8, 1<<20),
	}
	if full {
		cfg.MaxLgU = 23
		cfg.PPO = 4
		cfg.Trials = characterization.TaperedTrials(1<<18, 16, 1<<6, 1<<23)
	}
	return cfg
}

// figure6: write-only throughput vs stream size.
func figure6(full bool, k int) {
	cfg := speedCfg(full)
	fmt.Printf("# Figure 6: write-only workload, k=%d, e=0.04 (nS/u per InU)\n", k)
	fmt.Println("curve\tInU\tTrials\tnS_u")
	writers := []int{1, 4, 8, 12}
	if !full {
		writers = []int{1, 2, 4}
	}
	for _, w := range writers {
		pts := characterization.SpeedProfile(&characterization.ConcurrentThetaRunner{
			K: k, Writers: w, MaxError: 0.04,
		}, cfg)
		for _, p := range pts {
			fmt.Printf("concurrent-%dw\t%d\t%d\t%.2f\n", w, p.InU, p.Trials, p.NsPerUpdate)
		}
	}
	for _, th := range []int{1, writers[len(writers)-1]} {
		pts := characterization.SpeedProfile(&characterization.LockThetaRunner{
			K: k, Threads: th,
		}, cfg)
		for _, p := range pts {
			fmt.Printf("lock-%dt\t%d\t%d\t%.2f\n", th, p.InU, p.Trials, p.NsPerUpdate)
		}
	}
}

// figure7: mixed read/write workload (10 background readers, 1ms pause).
func figure7(full bool, k int) {
	cfg := speedCfg(full)
	readers := 10
	fmt.Printf("# Figure 7: mixed workload, k=%d, %d background readers (1ms pause)\n", k, readers)
	fmt.Println("curve\tInU\tTrials\tnS_u")
	for _, w := range []int{1, 2} {
		pts := characterization.SpeedProfile(
			characterization.NewMixedThetaRunner(true, k, w, readers, time.Millisecond, 0.04), cfg)
		for _, p := range pts {
			fmt.Printf("concurrent-%dw\t%d\t%d\t%.2f\n", w, p.InU, p.Trials, p.NsPerUpdate)
		}
		pts = characterization.SpeedProfile(
			characterization.NewMixedThetaRunner(false, k, w, readers, time.Millisecond, 0.04), cfg)
		for _, p := range pts {
			fmt.Printf("lock-%dw\t%d\t%d\t%.2f\n", w, p.InU, p.Trials, p.NsPerUpdate)
		}
	}
}

// figure8: eager vs no-eager speedup for small streams.
func figure8(full bool, k int) {
	cfg := characterization.SpeedConfig{
		MinLgU: 3, MaxLgU: 14, PPO: 2,
		Trials: characterization.TaperedTrials(256, 8, 1<<6, 1<<14),
	}
	if full {
		cfg.Trials = characterization.TaperedTrials(1<<16, 64, 1<<6, 1<<14)
		cfg.PPO = 4
	}
	fmt.Printf("# Figure 8: eager (e=0.04) vs no-eager (e=1.0) speedup, k=%d\n", k)
	fmt.Println("InU\tspeedup")
	eager := characterization.SpeedProfile(&characterization.ConcurrentThetaRunner{
		K: k, Writers: 1, MaxError: 0.04,
	}, cfg)
	noEager := characterization.SpeedProfile(&characterization.ConcurrentThetaRunner{
		K: k, Writers: 1, MaxError: 1.0,
	}, cfg)
	for _, s := range characterization.Speedup(noEager, eager) {
		fmt.Printf("%d\t%.2f\n", s.InU, s.Speedup)
	}
}

// table1: Θ error analysis under adversaries.
func table1(full bool) {
	trials, steps := 200000, 600
	if full {
		trials, steps = 2000000, 1200
	}
	p := adversary.Table1Defaults
	res := adversary.ComputeTable1(p, trials, steps, 0xfcd5)
	fmt.Printf("# Table 1: Θ sketch error analysis, r=%d, k=2^10, n=2^15\n", p.R)
	fmt.Println("row\tmethod\texpectation\tRSE")
	prt := func(row, method string, a adversary.ThetaAnalysis) {
		fmt.Printf("%s\t%s\t%.1f\t%.4f\n", row, method, a.Expectation, a.RSE)
	}
	prt("sequential", "closed-form", res.SequentialClosed)
	prt("sequential", "numerical", res.SequentialNumerical)
	prt("strong-adversary", "numerical", res.StrongNumerical)
	prt("strong-adversary", "monte-carlo", res.StrongMonteCarlo)
	prt("weak-adversary", "numerical", res.WeakNumerical)
	prt("weak-adversary", "monte-carlo", res.WeakMonteCarlo)
	prt("weak-adversary", "closed-form", res.WeakClosed)
	fmt.Printf("# paper: sequential E=n=32768 RSE<=0.0313; strong E~32604 (0.995n) RSE<=0.038; weak E=n(k-1)/(k+r-1)=%.0f RSE<=0.0626\n",
		float64(p.N)*float64(p.K-1)/float64(p.K+p.R-1))
}

// table2: performance vs accuracy as a function of k.
func table2(full bool) {
	speedCfg := characterization.SpeedConfig{
		MinLgU: 8, MaxLgU: 20, PPO: 2,
		Trials: characterization.TaperedTrials(32, 2, 1<<8, 1<<20),
	}
	accCfg := characterization.AccuracyConfig{
		MinLgU: 7, MaxLgU: 17, PPO: 2,
		Trials: characterization.TaperedTrials(128, 16, 1<<9, 1<<17),
	}
	if full {
		speedCfg.MaxLgU, accCfg.MaxLgU = 23, 23
		speedCfg.Trials = characterization.TaperedTrials(1<<14, 16, 1<<8, 1<<23)
		accCfg.Trials = characterization.TaperedTrials(4096, 64, 1<<9, 1<<23)
	}
	fmt.Println("# Table 2: performance vs accuracy as a function of k (concurrent vs lock-based, 1 writer)")
	fmt.Println("k\tthpt_crossing_point\tmax_median_err\tmax_q99_err")
	for _, k := range []int{256, 1024, 4096} {
		conc := characterization.SpeedProfile(&characterization.ConcurrentThetaRunner{
			K: k, Writers: 1, MaxError: 0.04,
		}, speedCfg)
		lock := characterization.SpeedProfile(&characterization.LockThetaRunner{
			K: k, Threads: 1,
		}, speedCfg)
		crossing := characterization.CrossingPoint(conc, lock)
		acc := characterization.AccuracyProfile(
			&characterization.ConcurrentThetaAccuracy{K: k, MaxError: 0.04}, accCfg)
		var maxMed, maxQ99 float64
		for _, p := range acc {
			if m := abs(p.Median); m > maxMed {
				maxMed = m
			}
			if q := max(abs(p.Q01), abs(p.Q99)); q > maxQ99 {
				maxQ99 = q
			}
		}
		fmt.Printf("%d\t%d\t%.2f\t%.2f\n", k, crossing, maxMed, maxQ99)
	}
	fmt.Println("# paper: k=256: 15000/0.16/0.27; k=1024: 100000/0.05/0.13; k=4096: 700000/0.03/0.05")
}

// quantilesError: §6.2 relaxed quantiles bound vs a real attack.
func quantilesError(full bool) {
	trials := 20
	if full {
		trials = 200
	}
	fmt.Println("# §6.2: relaxed quantiles — worst attack error vs ε_r = ε + r/n − rε/n (k=128)")
	fmt.Println("n\tr\tphi\tworst_err\teps_seq\teps_relaxed")
	for _, n := range []int{1000, 10000, 100000} {
		for _, r := range []int{10, 100} {
			res := adversary.AttackQuantiles(128, n, r, 0.5, trials, 7)
			fmt.Printf("%d\t%d\t%.2f\t%.4f\t%.4f\t%.4f\n",
				res.N, res.R, res.Phi, res.WorstError, res.EpsSeq, res.EpsRelaxed)
		}
	}
}

// sketches: the three framework instantiations under one sweep — not a
// paper figure, but the natural cross-check of §8's claim that the
// framework generalises beyond Θ.
func sketches(full bool) {
	cfg := characterization.SpeedConfig{
		MinLgU: 8, MaxLgU: 18, PPO: 1,
		Trials: characterization.TaperedTrials(16, 2, 1<<9, 1<<18),
	}
	if full {
		cfg.MaxLgU = 22
		cfg.PPO = 2
		cfg.Trials = characterization.TaperedTrials(256, 8, 1<<9, 1<<22)
	}
	fmt.Println("# Extension: framework instantiations side by side (2 writers)")
	fmt.Println("curve\tInU\tTrials\tnS_u")
	runners := []characterization.Runner{
		&characterization.ConcurrentThetaRunner{K: 4096, Writers: 2, MaxError: 0.04},
		&characterization.ConcurrentQuantilesRunner{K: 128, Writers: 2},
		&characterization.ConcurrentHLLRunner{Precision: 12, Writers: 2},
	}
	for _, r := range runners {
		for _, p := range characterization.SpeedProfile(r, cfg) {
			fmt.Printf("%s\t%d\t%d\t%.2f\n", r.Name(), p.InU, p.Trials, p.NsPerUpdate)
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
