// Command fcds-plot renders fcds-bench TSV output as ASCII charts, so
// the paper's figures can be eyeballed without leaving the terminal:
//
//	fcds-bench figure6 > fig6.tsv
//	fcds-plot -curve 1 -x 2 -y 4 -logx -logy fig6.tsv
//
// Flags select which 1-based columns hold the series key (-curve, 0
// for a single unnamed series), the x value (-x) and the y value (-y).
// Comment lines (#) and non-numeric rows (headers) are skipped.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/fcds/fcds/internal/asciiplot"
)

func main() {
	curveCol := flag.Int("curve", 0, "1-based column holding the series name (0 = single series)")
	xCol := flag.Int("x", 1, "1-based column holding x values")
	yCol := flag.Int("y", 2, "1-based column holding y values")
	logx := flag.Bool("logx", false, "log-scale x axis")
	logy := flag.Bool("logy", false, "log-scale y axis")
	width := flag.Int("width", 72, "plot width")
	height := flag.Int("height", 20, "plot height")
	title := flag.String("title", "", "plot title (default: first comment line)")
	flag.Parse()

	in := os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "fcds-plot:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}

	order := []string{}
	byName := map[string]*asciiplot.Series{}
	autoTitle := ""
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if autoTitle == "" {
				autoTitle = strings.TrimSpace(strings.TrimPrefix(line, "#"))
			}
			continue
		}
		fields := strings.Split(line, "\t")
		x, err1 := fieldFloat(fields, *xCol)
		y, err2 := fieldFloat(fields, *yCol)
		if err1 != nil || err2 != nil {
			continue // header or malformed row
		}
		name := ""
		if *curveCol > 0 && *curveCol <= len(fields) {
			name = fields[*curveCol-1]
		}
		s, ok := byName[name]
		if !ok {
			s = &asciiplot.Series{Name: name}
			byName[name] = s
			order = append(order, name)
		}
		s.X = append(s.X, x)
		s.Y = append(s.Y, y)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "fcds-plot:", err)
		os.Exit(1)
	}
	series := make([]asciiplot.Series, 0, len(order))
	for _, name := range order {
		series = append(series, *byName[name])
	}
	if *title == "" {
		*title = autoTitle
	}
	fmt.Print(asciiplot.Render(series, asciiplot.Config{
		Width: *width, Height: *height, LogX: *logx, LogY: *logy, Title: *title,
	}))
}

func fieldFloat(fields []string, col int) (float64, error) {
	if col < 1 || col > len(fields) {
		return 0, fmt.Errorf("column %d out of range", col)
	}
	return strconv.ParseFloat(strings.TrimSpace(fields[col-1]), 64)
}
