// Command relaxcheck runs the concurrent Θ sketch in exact mode under
// a randomized concurrent workload while recording the full
// invoke/response history, then verifies the history against the
// r-relaxed sequential specification (Definition 2 / Theorem 1,
// r = 2·N·b). It is the library's end-to-end correctness harness —
// run it in a loop under varying schedules to hunt for relaxation
// violations.
//
// Usage: relaxcheck [-writers 3] [-updates 5000] [-b 8] [-rounds 5]
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"github.com/fcds/fcds/internal/relax"
	"github.com/fcds/fcds/internal/theta"
)

func main() {
	writers := flag.Int("writers", 3, "writer goroutines (N)")
	updates := flag.Int("updates", 5000, "updates per writer")
	b := flag.Int("b", 8, "local buffer size")
	rounds := flag.Int("rounds", 5, "independent rounds")
	flag.Parse()

	for round := 1; round <= *rounds; round++ {
		if err := runRound(*writers, *updates, *b, round); err != nil {
			fmt.Fprintf(os.Stderr, "round %d: VIOLATION: %v\n", round, err)
			os.Exit(1)
		}
		fmt.Printf("round %d: OK (r = %d)\n", round, 2**writers**b)
	}
	fmt.Println("all rounds passed: history is strongly linearisable w.r.t. the r-relaxed spec")
}

func runRound(writers, updates, b, round int) error {
	c := theta.NewConcurrent(theta.ConcurrentConfig{
		K: 1 << 16, Writers: writers, BufferSize: b, EagerLimit: -1,
		Seed: uint64(round) * 7919,
	})
	defer c.Close()
	rec := relax.NewRecorder()

	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := c.Writer(i)
			for j := 0; j < updates; j++ {
				v := uint64(i*updates + j)
				inv := rec.Begin()
				w.UpdateUint64(v)
				rec.EndUpdate(i, v, inv)
			}
		}(i)
	}
	stop := make(chan struct{})
	var qwg sync.WaitGroup
	qwg.Add(1)
	go func() {
		defer qwg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			inv := rec.Begin()
			est := c.Estimate()
			rec.EndQuery(est, inv)
			time.Sleep(200 * time.Microsecond)
		}
	}()
	wg.Wait()
	close(stop)
	qwg.Wait()

	h := rec.History()
	fmt.Printf("round %d: %d events recorded, final estimate %.0f / %d\n",
		round, len(h), c.Estimate(), writers*updates)
	return relax.CheckCounting(h, c.Relaxation())
}
