// Command fcds is a streaming CLI over the sketch library: it reads
// newline-delimited items from stdin and prints an estimate.
//
// Usage:
//
//	fcds uniques [-k 4096] [-writers N]      # distinct-count (Θ sketch)
//	fcds hll [-p 12]                         # distinct-count (HLL)
//	fcds quantiles [-k 128] [-q 0.5,0.99]    # numeric quantiles
//
// With -writers > 1 the input is fanned out to N concurrent writer
// goroutines through the paper's framework — mostly useful as a live
// demo that queries (printed every -every lines) proceed while
// ingestion runs.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	fcds "github.com/fcds/fcds"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "uniques":
		uniques(os.Args[2:])
	case "hll":
		hllCmd(os.Args[2:])
	case "quantiles":
		quantilesCmd(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: fcds {uniques|hll|quantiles} [flags] < input")
}

func uniques(args []string) {
	fs := flag.NewFlagSet("uniques", flag.ExitOnError)
	k := fs.Int("k", 4096, "sketch size (power of two)")
	writers := fs.Int("writers", 1, "concurrent writer goroutines")
	every := fs.Int("every", 0, "print a live estimate every N lines (0 = only final)")
	_ = fs.Parse(args)

	c := fcds.NewConcurrentTheta(fcds.ConcurrentThetaConfig{K: *k, Writers: *writers})
	defer c.Close()

	lines := make(chan string, 1024)
	done := make(chan struct{})
	for i := 0; i < *writers; i++ {
		go func(i int) {
			w := c.Writer(i)
			for s := range lines {
				w.UpdateString(s)
			}
			w.Flush()
			done <- struct{}{}
		}(i)
	}
	n := feedLines(lines, *every, func() {
		fmt.Printf("~%.0f uniques so far\n", c.Estimate())
	})
	close(lines)
	for i := 0; i < *writers; i++ {
		<-done
	}
	fmt.Printf("%d lines, ~%.0f distinct (Θ sketch k=%d, writers=%d)\n",
		n, c.Estimate(), *k, *writers)
}

func hllCmd(args []string) {
	fs := flag.NewFlagSet("hll", flag.ExitOnError)
	p := fs.Int("p", 12, "precision (4..18)")
	_ = fs.Parse(args)
	s := fcds.NewHLLSketch(uint8(*p))
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := 0
	for sc.Scan() {
		s.UpdateString(sc.Text())
		n++
	}
	fmt.Printf("%d lines, ~%.0f distinct (HLL p=%d, RSE %.1f%%)\n",
		n, s.Estimate(), *p, 100*s.RelativeStandardError())
}

func quantilesCmd(args []string) {
	fs := flag.NewFlagSet("quantiles", flag.ExitOnError)
	k := fs.Int("k", 128, "sketch parameter (power of two)")
	qs := fs.String("q", "0.5,0.9,0.99", "comma-separated quantile fractions")
	_ = fs.Parse(args)
	s := fcds.NewQuantilesSketch(*k)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	bad := 0
	for sc.Scan() {
		v, err := strconv.ParseFloat(strings.TrimSpace(sc.Text()), 64)
		if err != nil {
			bad++
			continue
		}
		s.Update(v)
	}
	if s.IsEmpty() {
		fmt.Println("no numeric input")
		return
	}
	fmt.Printf("n=%d min=%g max=%g (ε≈%.2f%%)\n", s.N(), s.Min(), s.Max(),
		100*fcds.QuantilesRankError(*k))
	for _, part := range strings.Split(*qs, ",") {
		phi, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || phi < 0 || phi > 1 {
			fmt.Fprintf(os.Stderr, "skipping bad quantile %q\n", part)
			continue
		}
		fmt.Printf("q%.3g = %g\n", phi, s.Quantile(phi))
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "skipped %d non-numeric lines\n", bad)
	}
}

// feedLines pumps stdin lines into ch, invoking report every `every`
// lines when every > 0. Returns the line count.
func feedLines(ch chan<- string, every int, report func()) int {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := 0
	for sc.Scan() {
		ch <- sc.Text()
		n++
		if every > 0 && n%every == 0 {
			report()
		}
	}
	return n
}
