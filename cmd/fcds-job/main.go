// Command fcds-job runs characterization jobs described by .conf files
// — the Go counterpart of the paper artifact's
// `java -cp "./*" ...characterization.Job <file>.conf` workflow
// (Appendix A.5). Ready-made conf files for the paper's figures live
// in the repository's conf/ directory.
//
// Usage:
//
//	fcds-job conf/figure6_concurrent_1w.conf [more.conf ...]
//
// Each job's TSV output goes to stdout, prefixed by a comment line
// naming the runner, exactly like the artifact's SpeedProfile /
// AccuracyProfile text outputs.
package main

import (
	"fmt"
	"os"

	"github.com/fcds/fcds/internal/characterization"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: fcds-job <conf-file> [...]")
		os.Exit(2)
	}
	for _, path := range os.Args[1:] {
		if err := runOne(path); err != nil {
			fmt.Fprintf(os.Stderr, "fcds-job: %s: %v\n", path, err)
			os.Exit(1)
		}
	}
}

func runOne(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	conf, err := characterization.ParseConf(f)
	if err != nil {
		return err
	}
	fmt.Printf("# conf: %s\n", path)
	return characterization.RunJob(conf, os.Stdout)
}
