// Benchmarks regenerating the paper's evaluation, one per table/figure
// (full parameterised sweeps live in cmd/fcds-bench; these are the
// `go test -bench` entry points with fixed representative parameters).
//
// Reading results: throughput figures (1, 6, 7) report ns per update —
// the paper's Mops/s is 1000/(ns/op). Figure 8 and Table 2 compare
// pairs of benchmarks. Table 1 benchmarks the two analysis engines.
package fcds_test

import (
	"sync"
	"testing"
	"time"

	"github.com/fcds/fcds/internal/adversary"
	"github.com/fcds/fcds/internal/characterization"
	"github.com/fcds/fcds/internal/lockbased"
	"github.com/fcds/fcds/internal/stream"
	"github.com/fcds/fcds/internal/theta"
)

// --- Figure 1: update-only scalability, b=1, k=4096 ---------------------

func benchConcurrentThetaUpdates(b *testing.B, writers, bufSize int, maxErr float64) {
	c := theta.NewConcurrent(theta.ConcurrentConfig{
		K: 4096, Writers: writers, MaxError: maxErr, BufferSize: bufSize,
	})
	defer c.Close()
	parts := stream.Partition(uint64(b.N), writers)
	b.ResetTimer()
	var wg sync.WaitGroup
	for i, p := range parts {
		wg.Add(1)
		go func(i int, p stream.Range) {
			defer wg.Done()
			w := c.Writer(i)
			for v := p.Start; v < p.Start+p.Count; v++ {
				w.UpdateUint64(v)
			}
			w.Flush()
		}(i, p)
	}
	wg.Wait()
}

func benchLockThetaUpdates(b *testing.B, threads int) {
	s := lockbased.NewTheta(4096)
	parts := stream.Partition(uint64(b.N), threads)
	b.ResetTimer()
	var wg sync.WaitGroup
	for _, p := range parts {
		wg.Add(1)
		go func(p stream.Range) {
			defer wg.Done()
			for v := p.Start; v < p.Start+p.Count; v++ {
				s.UpdateUint64(v)
			}
		}(p)
	}
	wg.Wait()
}

func BenchmarkFigure1_Concurrent_1w(b *testing.B) { benchConcurrentThetaUpdates(b, 1, 1, 1) }
func BenchmarkFigure1_Concurrent_2w(b *testing.B) { benchConcurrentThetaUpdates(b, 2, 1, 1) }
func BenchmarkFigure1_Concurrent_4w(b *testing.B) { benchConcurrentThetaUpdates(b, 4, 1, 1) }
func BenchmarkFigure1_LockBased_1t(b *testing.B)  { benchLockThetaUpdates(b, 1) }
func BenchmarkFigure1_LockBased_2t(b *testing.B)  { benchLockThetaUpdates(b, 2) }
func BenchmarkFigure1_LockBased_4t(b *testing.B)  { benchLockThetaUpdates(b, 4) }

// --- Batch vs item ingestion ---------------------------------------------
//
// The batch pipeline's claim: amortising the eager check, hint load and
// counter arithmetic — and pre-filtering in the same pass that hashes —
// beats per-item Update by >= 1.5x at 4 writers. Both sides use the
// same sketch configuration so only the ingestion path differs.

func benchConcurrentThetaBatchUpdates(b *testing.B, writers, bufSize int, maxErr float64, chunk int) {
	c := theta.NewConcurrent(theta.ConcurrentConfig{
		K: 4096, Writers: writers, MaxError: maxErr, BufferSize: bufSize,
	})
	defer c.Close()
	parts := stream.Partition(uint64(b.N), writers)
	b.ResetTimer()
	var wg sync.WaitGroup
	for i, p := range parts {
		wg.Add(1)
		go func(i int, p stream.Range) {
			defer wg.Done()
			w := c.Writer(i)
			buf := make([]uint64, 0, chunk)
			for v := p.Start; v < p.Start+p.Count; v++ {
				buf = append(buf, v)
				if len(buf) == chunk {
					w.UpdateUint64Batch(buf)
					buf = buf[:0]
				}
			}
			w.UpdateUint64Batch(buf)
			w.Flush()
		}(i, p)
	}
	wg.Wait()
}

func BenchmarkBatch_vs_Item(b *testing.B) {
	const bufSize = 64
	b.Run("item/4w", func(b *testing.B) { benchConcurrentThetaUpdates(b, 4, bufSize, 1) })
	b.Run("batch64/4w", func(b *testing.B) { benchConcurrentThetaBatchUpdates(b, 4, bufSize, 1, 64) })
	b.Run("batch256/4w", func(b *testing.B) { benchConcurrentThetaBatchUpdates(b, 4, bufSize, 1, 256) })
	b.Run("batch4096/4w", func(b *testing.B) { benchConcurrentThetaBatchUpdates(b, 4, bufSize, 1, 4096) })
	b.Run("item/1w", func(b *testing.B) { benchConcurrentThetaUpdates(b, 1, bufSize, 1) })
	b.Run("batch256/1w", func(b *testing.B) { benchConcurrentThetaBatchUpdates(b, 1, bufSize, 1, 256) })
}

// String ingestion: the batch path must be allocation-free (the item
// path's figure documents whatever the per-call overhead is).
func BenchmarkBatchString(b *testing.B) {
	keys := make([]string, 256)
	for i := range keys {
		keys[i] = "user-" + string(rune('a'+i%26)) + "-0123456789abcdef"[:8+i%8]
	}
	b.Run("item", func(b *testing.B) {
		c := theta.NewConcurrent(theta.ConcurrentConfig{K: 4096, Writers: 1, MaxError: 1, BufferSize: 64})
		defer c.Close()
		w := c.Writer(0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.UpdateString(keys[i%len(keys)])
		}
	})
	b.Run("batch256", func(b *testing.B) {
		c := theta.NewConcurrent(theta.ConcurrentConfig{K: 4096, Writers: 1, MaxError: 1, BufferSize: 64})
		defer c.Close()
		w := c.Writer(0)
		b.ReportAllocs()
		b.ResetTimer()
		for n := 0; n < b.N; n += len(keys) {
			batch := keys
			if rem := b.N - n; rem < len(batch) {
				batch = batch[:rem] // process exactly b.N items
			}
			w.UpdateStringBatch(batch)
		}
	})
}

// --- Figure 5: accuracy pitchfork trials (cost per trial) ----------------

func BenchmarkFigure5a_AccuracyTrial_NoEager(b *testing.B) {
	r := &characterization.ConcurrentThetaAccuracy{K: 4096, MaxError: 1.0}
	for i := 0; i < b.N; i++ {
		_ = r.Estimate(1<<14, i)
	}
}

func BenchmarkFigure5b_AccuracyTrial_Eager(b *testing.B) {
	r := &characterization.ConcurrentThetaAccuracy{K: 4096, MaxError: 0.04}
	for i := 0; i < b.N; i++ {
		_ = r.Estimate(1<<14, i)
	}
}

// --- Figure 6: write-only workload, e=0.04 -------------------------------

func BenchmarkFigure6_Concurrent_1w(b *testing.B) { benchConcurrentThetaUpdates(b, 1, 0, 0.04) }
func BenchmarkFigure6_Concurrent_4w(b *testing.B) { benchConcurrentThetaUpdates(b, 4, 0, 0.04) }
func BenchmarkFigure6_LockBased_1t(b *testing.B)  { benchLockThetaUpdates(b, 1) }

// --- Figure 7: mixed workload with background readers --------------------

func benchMixed(b *testing.B, concurrent bool, writers int) {
	r := characterization.NewMixedThetaRunner(concurrent, 4096, writers, 10, time.Millisecond, 0.04)
	b.ResetTimer()
	d := r.Run(uint64(b.N))
	b.StopTimer()
	// The runner reports its own wall time for b.N updates; the default
	// ns/op would also charge sketch construction and reader teardown,
	// so report the ingestion-only figure explicitly.
	b.ReportMetric(float64(d.Nanoseconds())/float64(b.N), "ingest-ns/op")
}

func BenchmarkFigure7_Mixed_Concurrent_1w(b *testing.B) { benchMixed(b, true, 1) }
func BenchmarkFigure7_Mixed_Concurrent_2w(b *testing.B) { benchMixed(b, true, 2) }
func BenchmarkFigure7_Mixed_LockBased_1w(b *testing.B)  { benchMixed(b, false, 1) }
func BenchmarkFigure7_Mixed_LockBased_2w(b *testing.B)  { benchMixed(b, false, 2) }

// --- Figure 8: eager vs no-eager on a small stream -----------------------

func benchSmallStream(b *testing.B, maxErr float64) {
	const n = 1024 // small stream: the regime Figure 8 targets
	for i := 0; i < b.N; i++ {
		c := theta.NewConcurrent(theta.ConcurrentConfig{
			K: 4096, Writers: 1, MaxError: maxErr,
		})
		w := c.Writer(0)
		for v := uint64(0); v < n; v++ {
			w.UpdateUint64(v)
		}
		w.Flush()
		c.Close()
	}
}

func BenchmarkFigure8_SmallStream_Eager(b *testing.B)   { benchSmallStream(b, 0.04) }
func BenchmarkFigure8_SmallStream_NoEager(b *testing.B) { benchSmallStream(b, 1.0) }

// --- Table 1: error-analysis engines --------------------------------------

func BenchmarkTable1_StrongAdversary_MonteCarlo100k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		adversary.StrongMonteCarlo(adversary.Table1Defaults, 100000, uint64(i)+1)
	}
}

func BenchmarkTable1_StrongAdversary_Numerical(b *testing.B) {
	for i := 0; i < b.N; i++ {
		adversary.StrongNumerical(adversary.Table1Defaults, 600)
	}
}

// --- Table 2: single-writer throughput across k ---------------------------

func BenchmarkTable2_Concurrent_k256(b *testing.B)  { benchTable2(b, 256) }
func BenchmarkTable2_Concurrent_k1024(b *testing.B) { benchTable2(b, 1024) }
func BenchmarkTable2_Concurrent_k4096(b *testing.B) { benchTable2(b, 4096) }

func benchTable2(b *testing.B, k int) {
	c := theta.NewConcurrent(theta.ConcurrentConfig{K: k, Writers: 1, MaxError: 0.04})
	defer c.Close()
	w := c.Writer(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.UpdateUint64(uint64(i))
	}
}

// --- §6.2: quantiles relaxation attack ------------------------------------

func BenchmarkQuantilesError_Attack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		adversary.AttackQuantiles(128, 10000, 100, 0.5, 1, uint64(i))
	}
}

// --- Ablations: the design choices DESIGN.md calls out --------------------

func benchAblation(b *testing.B, cfg theta.ConcurrentConfig) {
	cfg.K = 4096
	cfg.Writers = 1
	cfg.EagerLimit = -1
	c := theta.NewConcurrent(cfg)
	defer c.Close()
	w := c.Writer(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.UpdateUint64(uint64(i))
	}
}

// Hint pre-filtering on vs off (§5.2: "instrumental for performance").
func BenchmarkAblation_Filtering_On(b *testing.B) {
	benchAblation(b, theta.ConcurrentConfig{MaxError: 1, BufferSize: 16})
}
func BenchmarkAblation_Filtering_Off(b *testing.B) {
	benchAblation(b, theta.ConcurrentConfig{MaxError: 1, BufferSize: 16, DisableFiltering: true})
}

// Double buffering (OptParSketch) vs single buffer (ParSketch).
func BenchmarkAblation_DoubleBuffering_Opt(b *testing.B) {
	benchAblation(b, theta.ConcurrentConfig{MaxError: 1, BufferSize: 16})
}
func BenchmarkAblation_DoubleBuffering_ParSketch(b *testing.B) {
	benchAblation(b, theta.ConcurrentConfig{MaxError: 1, BufferSize: 16, DisableDoubleBuffering: true})
}

// §8 extension: adaptive local buffers vs fixed b.
func BenchmarkAblation_AdaptiveBuffer_On(b *testing.B) {
	benchAblation(b, theta.ConcurrentConfig{MaxError: 0.04, BufferSize: 2, AdaptiveBuffering: true})
}
func BenchmarkAblation_AdaptiveBuffer_Off(b *testing.B) {
	benchAblation(b, theta.ConcurrentConfig{MaxError: 0.04, BufferSize: 2})
}

// Global sketch family: QuickSelect (evaluation) vs KMV (Algorithm 1).
func BenchmarkAblation_Global_QuickSelect(b *testing.B) {
	benchAblation(b, theta.ConcurrentConfig{MaxError: 0.04})
}
func BenchmarkAblation_Global_KMV(b *testing.B) {
	benchAblation(b, theta.ConcurrentConfig{MaxError: 0.04, UseKMV: true})
}
